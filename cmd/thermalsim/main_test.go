package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), args, &out, &errb)
	if code != 0 {
		t.Logf("stderr: %s", errb.String())
	}
	return out.String(), code
}

func TestSmokeSprint(t *testing.T) {
	out, code := runOut(t, "-mode", "sprint", "-power", "16")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"sprint at 16.0 W", "melt start", "peak junction"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeCooldown(t *testing.T) {
	out, code := runOut(t, "-mode", "cooldown", "-power", "16")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "refreeze start") {
		t.Errorf("unexpected cooldown output:\n%s", out)
	}
}

func TestPowerSweepOrder(t *testing.T) {
	out, code := runOut(t, "-mode", "sprint", "-power", "8,16", "-workers", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Index(out, "sprint at 8.0 W") > strings.Index(out, "sprint at 16.0 W") {
		t.Errorf("sweep output out of list order:\n%s", out)
	}
}

func TestFlagErrors(t *testing.T) {
	if _, code := runOut(t, "-bogus"); code != 2 {
		t.Errorf("bad flag should exit 2, got %d", code)
	}
	if _, code := runOut(t, "-power", "x"); code != 2 {
		t.Errorf("bad power should exit 2, got %d", code)
	}
	if _, code := runOut(t, "-mode", "fry"); code != 2 {
		t.Errorf("bad mode should exit 2, got %d", code)
	}
	if _, code := runOut(t, "-power", "8,16", "-csv", "x.csv"); code != 2 {
		t.Errorf("-csv with a sweep should exit 2, got %d", code)
	}
}
