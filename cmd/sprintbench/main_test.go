package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), args, &out, &errb)
	if code != 0 {
		t.Logf("stderr: %s", errb.String())
	}
	return out.String(), code
}

func TestListExperiments(t *testing.T) {
	out, code := runOut(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"fig7", "table1", "session", "fleet_policy"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}
}

func TestRunsOneCheapExperiment(t *testing.T) {
	out, code := runOut(t, "-exp", "fig1", "-scale", "0.12")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "regenerated in") {
		t.Errorf("unexpected fig1 output:\n%s", out)
	}
}

func TestCSVFormat(t *testing.T) {
	out, code := runOut(t, "-exp", "fig1", "-scale", "0.12", "-format", "csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, ",") || strings.Contains(out, "regenerated in") {
		t.Errorf("csv output should be machine-readable:\n%s", out)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	if _, code := runOut(t, "-exp", "fig99"); code != 1 {
		t.Errorf("unknown experiment should exit 1, got %d", code)
	}
}

func TestBadFlagFails(t *testing.T) {
	if _, code := runOut(t, "-bogus"); code != 2 {
		t.Errorf("bad flag should exit 2, got %d", code)
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	if code := run(ctx, []string{"-exp", "fig7", "-scale", "0.12"}, &out, &errb); code != 1 {
		t.Errorf("cancelled run should exit 1, got %d", code)
	}
}
