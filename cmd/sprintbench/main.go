// Command sprintbench regenerates the paper's evaluation: every table and
// figure, or a chosen subset, printed as ASCII tables. Each experiment's
// sweep is evaluated concurrently on the shared engine worker pool;
// -workers=1 reproduces serial execution with identical output. Ctrl-C
// cancels the sweep cleanly between points.
//
// Usage:
//
//	sprintbench -list
//	sprintbench -exp all
//	sprintbench -exp fig7,fig10 -scale 0.5 -workers 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sprinting"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against the given streams; main is the only
// caller that attaches real ones (tests drive buffers).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sprintbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale   = fs.Float64("scale", 1, "input-size multiplier (<1 for quick approximate runs)")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		format  = fs.String("format", "table", "output format: table | csv")
		workers = fs.Int("workers", 0, "engine pool size (0 = GOMAXPROCS, 1 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	ids := sprinting.ExperimentIDs()
	if *list {
		for _, id := range ids {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}

	selected := ids
	if *exp != "all" {
		selected = strings.Split(*exp, ",")
	}
	for _, id := range selected {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		//sprintvet:ignore nondeterminism wall-clock timing of the regeneration is the reported product, not sim state
		start := time.Now()
		opt := sprinting.RunOptions{Scale: *scale, Workers: *workers, CSV: *format == "csv"}
		if err := sprinting.RunExperimentWithContext(ctx, stdout, id, opt); err != nil {
			fmt.Fprintf(stderr, "sprintbench: %v\n", err)
			return 1
		}
		if *format != "csv" {
			//sprintvet:ignore nondeterminism wall-clock timing of the regeneration is the reported product, not sim state
			fmt.Fprintf(stdout, "(%s regenerated in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}
	return 0
}
