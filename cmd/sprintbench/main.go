// Command sprintbench regenerates the paper's evaluation: every table and
// figure, or a chosen subset, printed as ASCII tables. Each experiment's
// sweep is evaluated concurrently on the shared engine worker pool;
// -workers=1 reproduces serial execution with identical output.
//
// Usage:
//
//	sprintbench -list
//	sprintbench -exp all
//	sprintbench -exp fig7,fig10 -scale 0.5 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sprinting"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.Float64("scale", 1, "input-size multiplier (<1 for quick approximate runs)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		format  = flag.String("format", "table", "output format: table | csv")
		workers = flag.Int("workers", 0, "engine pool size (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	ids := sprinting.ExperimentIDs()
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	selected := ids
	if *exp != "all" {
		selected = strings.Split(*exp, ",")
	}
	for _, id := range selected {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		opt := sprinting.RunOptions{Scale: *scale, Workers: *workers, CSV: *format == "csv"}
		if err := sprinting.RunExperimentWith(os.Stdout, id, opt); err != nil {
			fmt.Fprintf(os.Stderr, "sprintbench: %v\n", err)
			os.Exit(1)
		}
		if *format != "csv" {
			fmt.Printf("(%s regenerated in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}
}
