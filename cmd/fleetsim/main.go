// Command fleetsim runs the datacenter fleet simulation: N sprint-capable
// nodes — each owning a governor-managed thermal budget and a bounded FIFO
// queue — serve an open-loop request stream under a dispatch policy, and
// the simulator reports throughput, latency percentiles to p999, the
// sprint-denial rate, and per-node energy. With -coordination the nodes
// are grouped into racks sharing a provisioned power budget backed by an
// ultracap buffer, and the report adds breaker trips, throttled seconds,
// and the permit-denial rate.
//
// Multi-policy sweeps run concurrently on the engine worker pool; every
// simulation is deterministic, so -workers=1 produces byte-identical
// output. Ctrl-C cancels a long sweep cleanly.
//
// Usage:
//
//	fleetsim                                    # the four policies side by side
//	fleetsim -nodes 1000 -policy sprint-aware   # one policy at datacenter scale
//	fleetsim -nodes 8 -rate 3.8 -requests 4000  # explicit load point
//	fleetsim -policy hedged -hedge-s 0.5        # tune the hedging delay
//	fleetsim -coordination all -rack-size 16    # rack coordination side by side
//	fleetsim -coordination uncoordinated -rack-budget-w 31 -rate 9.6
//	fleetsim -nodes 10000 -requests 1000000 -policy sprint-aware \
//	    -coordination token-permit -rack-size 16 # warehouse scale, seconds
//	fleetsim -nodes 10000 -requests 1000000 -cpuprofile fleet.pprof
//
// Traces above 131072 requests stream latencies through a log-scale
// histogram (quantiles within 1.81%, mean/max exact) unless
// -exact-quantiles buffers them; -cpuprofile and -memprofile capture
// pprof profiles of the run for performance work.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"sprinting"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against the given streams; main is the only
// caller that attaches real ones (tests drive buffers).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fleetsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes    = fs.Int("nodes", 16, "number of sprint-capable nodes")
		policy   = fs.String("policy", "all", "dispatch policy: round-robin|least-loaded|sprint-aware|hedged|all")
		requests = fs.Int("requests", 100000, "open-loop trace length")
		rate     = fs.Float64("rate", 0, "fleet-wide arrival rate in req/s (0 = ≈85% of sustained capacity)")
		work     = fs.Float64("work", 2, "mean single-core work per request in seconds")
		seed     = fs.Int64("seed", 12345, "trace seed (0 selects the default 12345)")
		queue    = fs.Int("queue", 256, "per-node queue bound (in service + queued)")
		hedgeS   = fs.Float64("hedge-s", 1, "hedged policy: duplicate a request unfinished after this many seconds (0 selects the default 1)")
		workers  = fs.Int("workers", 0, "engine pool size (0 = GOMAXPROCS, 1 = serial)")

		exactQ     = fs.Bool("exact-quantiles", false, "buffer and sort every latency for exact quantiles at any scale (default: exact up to 131072 requests, streaming histogram above)")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile after the sweep to this file")

		coordination = fs.String("coordination", "none", "rack coordination: none|uncoordinated|token-permit|probabilistic|all")
		rackSize     = fs.Int("rack-size", 0, "nodes per rack power domain (0 = default 8; needs -coordination)")
		rackBudgetW  = fs.Float64("rack-budget-w", 0, "provisioned power per rack in watts (0 = nominal for all nodes + sprint headroom for a quarter)")
		rackBufferJ  = fs.Float64("rack-buffer-j", 0, "rack ultracap ride-through energy in joules (0 = one §6 ultracap bank per rack)")
		permits      = fs.Int("permits", 0, "token-permit coordination: concurrent sprint permits per rack (0 = derive from the budget)")
		recoveryS    = fs.Float64("recovery-s", 0, "breaker recovery window in seconds (0 = default 2)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var policies []sprinting.FleetPolicy
	if *policy == "all" {
		policies = sprinting.FleetPolicies()
	} else {
		p, err := sprinting.ParseFleetPolicy(*policy)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 2
		}
		policies = []sprinting.FleetPolicy{p}
	}

	var coords []sprinting.RackCoordination
	if *coordination == "all" {
		coords = sprinting.RackCoordinations()
	} else {
		c, err := sprinting.ParseRackCoordination(*coordination)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 2
		}
		coords = []sprinting.RackCoordination{c}
	}
	rackMode := len(coords) > 1 || coords[0] != sprinting.RackNoCoordination

	var cfgs []sprinting.FleetConfig
	for _, p := range policies {
		for _, c := range coords {
			cfg := sprinting.DefaultFleetConfig(p)
			cfg.Nodes = *nodes
			cfg.Requests = *requests
			cfg.ArrivalRatePerS = *rate
			cfg.MeanWorkS = *work
			cfg.Seed = *seed
			cfg.QueueCap = *queue
			cfg.HedgeDelayS = *hedgeS
			cfg.ExactQuantiles = *exactQ
			cfg.Coordination = c
			cfg.RackSize = *rackSize
			cfg.RackPowerBudgetW = *rackBudgetW
			cfg.RackBufferJ = *rackBufferJ
			cfg.SprintPermits = *permits
			cfg.BreakerRecoveryS = *recoveryS
			cfgs = append(cfgs, cfg)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	fmt.Fprintf(stdout, "fleet: %d nodes, %d requests at %.2f req/s (mean work %.1f s, seed %d)\n\n",
		*nodes, *requests, cfgs[0].EffectiveRatePerS(), *work, *seed)
	metrics, err := sprinting.SimulateFleetSweepContext(ctx, cfgs, *workers)
	if err != nil {
		fmt.Fprintln(stderr, "fleetsim:", err)
		return 1
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
	}
	if len(metrics) > 0 && metrics[0].ApproxQuantiles {
		fmt.Fprintln(stdout, "quantiles: streaming log-scale histogram (within 1.81%; mean/max exact) — use -exact-quantiles to buffer")
	}

	if rackMode {
		fmt.Fprintf(stdout, "%-14s %-14s %11s %9s %9s %9s %7s %11s %10s %8s %9s\n",
			"policy", "coordination", "thr (req/s)", "p50 (s)", "p99 (s)", "p999 (s)",
			"trips", "rack-thr(s)", "permit-d %", "dropped", "J/req")
		for _, m := range metrics {
			fmt.Fprintf(stdout, "%-14s %-14s %11.3f %9.3f %9.3f %9.3f %7d %11.1f %10.2f %8d %9.2f\n",
				m.Policy.String(), m.Coordination.String(), m.ThroughputRPS,
				m.P50S, m.P99S, m.P999S, m.BreakerTrips, m.RackThrottledS,
				100*m.PermitDenialRate, m.Dropped, m.EnergyPerRequestJ)
		}
		fmt.Fprintln(stdout, "\nuncoordinated sprints can trip the rack breaker; token permits make trips impossible by construction")
		return 0
	}

	fmt.Fprintf(stdout, "%-14s %11s %9s %9s %9s %9s %9s %9s %8s %9s\n",
		"policy", "thr (req/s)", "p50 (s)", "p95 (s)", "p99 (s)", "p999 (s)", "max (s)",
		"denied %", "dropped", "J/req")
	for _, m := range metrics {
		fmt.Fprintf(stdout, "%-14s %11.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.2f %8d %9.2f\n",
			m.Policy.String(), m.ThroughputRPS, m.P50S, m.P95S, m.P99S, m.P999S, m.MaxS,
			100*m.SprintDenialRate, m.Dropped, m.EnergyPerRequestJ)
		if m.HedgesIssued > 0 || m.HedgesSuppressed > 0 {
			fmt.Fprintf(stdout, "%-14s %d hedges issued, %d won, %d copies cancelled, %d suppressed (no spare capacity), %.0f J total service energy\n",
				"", m.HedgesIssued, m.HedgeWins, m.CancelledCopies, m.HedgesSuppressed, m.TotalEnergyJ)
		}
	}
	fmt.Fprintln(stdout, "\nsprint-aware dispatch routes on thermal headroom; hedging trades duplicated energy for tail latency")
	return 0
}
