// Command fleetsim runs the datacenter fleet simulation: N sprint-capable
// nodes — each owning a governor-managed thermal budget and a bounded FIFO
// queue — serve an open-loop request stream under a dispatch policy, and
// the simulator reports throughput, latency percentiles to p999, the
// sprint-denial rate, and per-node energy. With -coordination the nodes
// are grouped into racks sharing a provisioned power budget backed by an
// ultracap buffer, and the report adds breaker trips, throttled seconds,
// and the permit-denial rate.
//
// Multi-policy sweeps run concurrently on the engine worker pool; every
// simulation is deterministic, so -workers=1 produces byte-identical
// output. Independently, -shard-workers W shards each simulation's own
// event loop across W per-worker loops with racks as the shard boundary;
// the output is byte-identical at every W (decoupled configurations run
// the shards on real goroutines, coupled ones replay the exact global
// event order through a deterministic K-way merge). Ctrl-C cancels a
// long sweep cleanly.
//
// Usage:
//
//	fleetsim                                    # the four policies side by side
//	fleetsim -nodes 1000 -policy sprint-aware   # one policy at datacenter scale
//	fleetsim -nodes 8 -rate 3.8 -requests 4000  # explicit load point
//	fleetsim -policy hedged -hedge-s 0.5        # tune the hedging delay
//	fleetsim -coordination all -rack-size 16    # rack coordination side by side
//	fleetsim -coordination uncoordinated -rack-budget-w 31 -rate 9.6
//	fleetsim -nodes 10000 -requests 1000000 -policy sprint-aware \
//	    -coordination token-permit -rack-size 16 # warehouse scale, seconds
//	fleetsim -nodes 10000 -requests 1000000 -shard-workers 8 # sharded loop
//	fleetsim -nodes 10000 -requests 1000000 -cpuprofile fleet.pprof
//	fleetsim -policy sprint-aware -trace out.jsonl -trace-summary
//	fleetsim -gray-frac 0.15 -gray-slowdown 8 -timeout-s 6 \
//	    -max-retries 3 -retry-budget 5          # fault injection + budgeted retries
//
// The reliability flags arm the request-reliability layer: -gray-frac /
// -gray-slowdown plant gray stragglers (alive but slowed — queue-aware
// policies can see the backlog, blind ones cannot), -fault-prob injects
// transient service faults, and -timeout-s arms client-side timeouts
// whose expired attempts retry with exponential backoff up to
// -max-retries, capped fleet-wide by the -retry-budget token bucket
// (an empty bucket sheds the request instead of retrying — the
// defense against retry-storm metastability). The report then adds
// goodput (completed work only, vs throughput's all-services rate),
// timed-out/shed counts, and the retry-amplification factor.
//
// Traces above 131072 requests stream latencies through a log-scale
// histogram (quantiles within 1.81%, mean/max exact) unless
// -exact-quantiles buffers them; -cpuprofile and -memprofile capture
// pprof profiles of the run for performance work.
//
// With -scenario file.json the run goes dynamic: the JSON file declares
// load phases (flat, ramp, sine, decay, with per-phase ambient shifts),
// optional heterogeneous node classes, and node failure/recovery churn,
// and the report breaks every policy × coordination combination down per
// phase. The scenario file owns the load, so -requests and -rate are
// rejected alongside it:
//
//	fleetsim -scenario flashcrowd.json -policy all
//	fleetsim -scenario flashcrowd.json -coordination token-permit -workers 1
//
// A minimal scenario file:
//
// With -trace file.jsonl the run attaches the flight recorder and writes
// the recording as JSONL: a meta header, then every dispatch decision
// (winning key, top-k rejected alternatives with counterfactual finish
// times), lifecycle event (hedges, breaker trips, churn, sprints), and
// rolling timeline sample, in exact global event order — byte-identical
// at any -shard-workers count. Tracing records a single run, so it
// requires one concrete -policy and -coordination; -trace-level picks
// decisions (default) or full, -counterfactual-k and -timeline-window-s
// tune the recorder, and -trace-summary prints the top regret decisions
// and a per-window p99 sparkline after the report:
//
//	fleetsim -policy sprint-aware -trace out.jsonl -counterfactual-k 5
//	fleetsim -scenario flashcrowd.json -coordination token-permit \
//	    -trace flash.jsonl -trace-level full -trace-summary
//
// With -replay file the run replays a recorded request trace (JSON lines
// or CSV of arrival_s, work_s and optional width/tenant/class labels)
// instead of synthesizing arrivals — deterministic what-if replays of
// recorded demand, byte-identical at any -shard-workers count.
// -convert-trace recording.jsonl -replay-out trace.csv converts a flight
// recording into such a trace, closing the record→replay loop (replaying
// a recording of a plain run reproduces that run's metrics exactly).
// With -workload file.json the run draws from a declarative multi-tenant
// workload: SLO classes (priority, latency target, token-bucket
// admission, per-class hedge delay), tenant populations with their own
// arrival processes (poisson/gamma/weibull) and work/width
// distributions, and a dequeue discipline (fifo, priority, or sjf); add
// -scenario to ride the tenants on its phases and churn. Both modes
// report per-class latency/goodput/SLO lines and the Jain fairness index
// over tenants:
//
//	fleetsim -policy sprint-aware -trace rec.jsonl && \
//	    fleetsim -convert-trace rec.jsonl -replay-out trace.csv && \
//	    fleetsim -policy sprint-aware -replay trace.csv
//	fleetsim -workload tenants.json -policy sprint-aware
//	fleetsim -workload tenants.json -scenario flashcrowd.json
//
//	{
//	  "base_rate_per_s": 7.2,
//	  "phases": [
//	    {"name": "baseline", "duration_s": 60, "start_factor": 0.7},
//	    {"name": "surge", "duration_s": 40, "start_factor": 2.0},
//	    {"name": "recovery", "duration_s": 60, "shape": "decay",
//	     "start_factor": 2.0, "end_factor": 0.5}
//	  ],
//	  "churn": {"mtbf_s": 20, "mean_downtime_s": 5}
//	}
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"sprinting"
)

// runScenario drives the dynamic-scenario mode: every policy ×
// coordination combination plays the same scenario, and the report breaks
// each run down per phase (counts attributed to the phase a request
// arrived in) before the overall line.
func runScenario(ctx context.Context, path string, scen sprinting.FleetScenario, scs []sprinting.ScenarioConfig, workers int, stdout, stderr io.Writer) int {
	metrics, err := sprinting.SimulateScenarioSweepContext(ctx, scs, workers)
	if err != nil {
		fmt.Fprintln(stderr, "fleetsim:", err)
		return 1
	}
	printScenarioReport(path, scen, metrics, stdout)
	return 0
}

// printScenarioReport renders the per-phase breakdown for each run; the
// traced path shares it with the sweep.
func printScenarioReport(path string, scen sprinting.FleetScenario, metrics []sprinting.FleetMetrics, stdout io.Writer) {
	totalS := 0.0
	for _, p := range scen.Phases {
		totalS += p.DurationS
	}
	churn := ""
	if scen.Churn.MTBFS > 0 {
		churn = fmt.Sprintf(", churn mtbf %.0f s", scen.Churn.MTBFS)
	}
	classes := ""
	if n := len(scen.Classes); n > 0 {
		classes = fmt.Sprintf(", %d node classes", n)
	}
	// Class declarations size the fleet; the metrics carry the node count
	// the simulation actually ran with.
	fmt.Fprintf(stdout, "scenario %s: %d phases over %.0f s, %d nodes%s%s\n",
		path, len(scen.Phases), totalS, len(metrics[0].Nodes), classes, churn)
	for _, m := range metrics {
		fmt.Fprintf(stdout, "\n== %s · coordination %s ==\n", m.Policy, m.Coordination)
		fmt.Fprintf(stdout, "%-12s %11s %8s %12s %9s %9s %9s %8s %7s %6s %6s\n",
			"phase", "span (s)", "offered", "thr (req/s)", "p50 (s)", "p99 (s)", "p999 (s)",
			"denied %", "dropped", "redisp", "fails")
		for _, ph := range m.Phases {
			fmt.Fprintf(stdout, "%-12s %4.0f-%-6.0f %8d %12.3f %9.3f %9.3f %9.3f %8.2f %7d %6d %6d\n",
				ph.Name, ph.StartS, ph.EndS, ph.Offered, ph.ThroughputRPS,
				ph.P50S, ph.P99S, ph.P999S, 100*ph.SprintDenialRate,
				ph.Dropped, ph.Redispatches, ph.NodeFailures)
		}
		fmt.Fprintf(stdout, "overall: thr %.3f req/s, p99 %.3f s, %d/%d completed, %d dropped, %d failures, %d recoveries, %d redispatches",
			m.ThroughputRPS, m.P99S, m.Completed, m.Requests, m.Dropped,
			m.NodeFailures, m.NodeRecoveries, m.Redispatches)
		if m.Coordination != sprinting.RackNoCoordination {
			fmt.Fprintf(stdout, ", %d trips, permit-denial %.1f%%", m.BreakerTrips, 100*m.PermitDenialRate)
		}
		if m.RackFailures > 0 {
			fmt.Fprintf(stdout, ", %d rack failures", m.RackFailures)
		}
		if m.TimedOut+m.Shed+m.Retries+m.TransientFaults+m.GrayNodes > 0 {
			fmt.Fprintf(stdout, "\nreliability: goodput %.3f req/s, %d timed out, %d shed, %d retries (amplification %.2fx), %d transient faults, %d gray nodes",
				m.GoodputRPS, m.TimedOut, m.Shed, m.Retries, m.RetryAmplification, m.TransientFaults, m.GrayNodes)
		}
		fmt.Fprintln(stdout)
		printWorkloadReport(stdout, m)
	}
	fmt.Fprintln(stdout, "\nphases attribute requests to their arrival window; sprint-aware dispatch rides a flash crowd on remaining thermal headroom")
}

// printReliabilityLine appends one run's reliability-layer outcome below
// its report row; a run with the layer off (nothing timed out, shed,
// retried, faulted, or gray) prints nothing.
func printReliabilityLine(stdout io.Writer, m sprinting.FleetMetrics) {
	if m.TimedOut+m.Shed+m.Retries+m.TransientFaults+m.GrayNodes == 0 {
		return
	}
	fmt.Fprintf(stdout, "%-14s goodput %.3f req/s, %d timed out, %d shed, %d retries (amplification %.2fx), %d transient faults, %d gray nodes\n",
		"", m.GoodputRPS, m.TimedOut, m.Shed, m.Retries, m.RetryAmplification, m.TransientFaults, m.GrayNodes)
}

// printRunTable renders the standard report table for a set of runs —
// the rack-mode or plain column set, one row per run followed by its
// optional hedge, reliability, and per-class workload lines.
func printRunTable(stdout io.Writer, rackMode bool, metrics []sprinting.FleetMetrics) {
	if rackMode {
		fmt.Fprintf(stdout, "%-14s %-14s %11s %9s %9s %9s %7s %11s %10s %8s %9s\n",
			"policy", "coordination", "thr (req/s)", "p50 (s)", "p99 (s)", "p999 (s)",
			"trips", "rack-thr(s)", "permit-d %", "dropped", "J/req")
		for _, m := range metrics {
			fmt.Fprintf(stdout, "%-14s %-14s %11.3f %9.3f %9.3f %9.3f %7d %11.1f %10.2f %8d %9.2f\n",
				m.Policy.String(), m.Coordination.String(), m.ThroughputRPS,
				m.P50S, m.P99S, m.P999S, m.BreakerTrips, m.RackThrottledS,
				100*m.PermitDenialRate, m.Dropped, m.EnergyPerRequestJ)
			printReliabilityLine(stdout, m)
			printWorkloadReport(stdout, m)
		}
		return
	}
	fmt.Fprintf(stdout, "%-14s %11s %9s %9s %9s %9s %9s %9s %8s %9s\n",
		"policy", "thr (req/s)", "p50 (s)", "p95 (s)", "p99 (s)", "p999 (s)", "max (s)",
		"denied %", "dropped", "J/req")
	for _, m := range metrics {
		fmt.Fprintf(stdout, "%-14s %11.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.2f %8d %9.2f\n",
			m.Policy.String(), m.ThroughputRPS, m.P50S, m.P95S, m.P99S, m.P999S, m.MaxS,
			100*m.SprintDenialRate, m.Dropped, m.EnergyPerRequestJ)
		if m.HedgesIssued > 0 || m.HedgesSuppressed > 0 {
			fmt.Fprintf(stdout, "%-14s %d hedges issued, %d won, %d copies cancelled, %d suppressed (no spare capacity), %.0f J total service energy\n",
				"", m.HedgesIssued, m.HedgeWins, m.CancelledCopies, m.HedgesSuppressed, m.TotalEnergyJ)
		}
		printReliabilityLine(stdout, m)
		printWorkloadReport(stdout, m)
	}
}

// printWorkloadReport renders the per-SLO-class breakdown and tenant
// fairness below a run's report row; a run without a workload prints
// nothing. The shed column breaks out admission-bucket door sheds in
// parentheses.
func printWorkloadReport(stdout io.Writer, m sprinting.FleetMetrics) {
	if len(m.Classes) == 0 {
		return
	}
	fmt.Fprintf(stdout, "%-14s %4s %8s %9s %7s %7s %11s %7s %11s %9s %9s %9s %6s\n",
		"class", "prio", "offered", "completed", "dropped", "t-out", "shed (adm)", "retries",
		"gdp (req/s)", "p50 (s)", "p99 (s)", "p999 (s)", "slo %")
	for _, c := range m.Classes {
		slo := "-"
		if c.TargetP99S > 0 {
			slo = fmt.Sprintf("%.1f", 100*c.SLOAttainment)
		}
		fmt.Fprintf(stdout, "%-14s %4d %8d %9d %7d %7d %5d (%3d) %7d %11.3f %9.3f %9.3f %9.3f %6s\n",
			c.Name, c.Priority, c.Offered, c.Completed, c.Dropped, c.TimedOut, c.Shed, c.AdmissionShed,
			c.Retries, c.GoodputRPS, c.P50S, c.P99S, c.P999S, slo)
	}
	if len(m.Tenants) > 0 {
		fmt.Fprintf(stdout, "%d tenants, Jain fairness %.3f\n", len(m.Tenants), m.JainFairness)
	}
}

// convertRecording reads a flight-recorder JSONL recording and writes
// its fresh-arrival dispatch decisions as a replayable CSV trace — the
// record half of the record→replay loop.
func convertRecording(in, out string, stdout, stderr io.Writer) int {
	f, err := os.Open(in)
	if err != nil {
		fmt.Fprintln(stderr, "fleetsim:", err)
		return 1
	}
	tr, err := sprinting.ReadFleetTrace(bufio.NewReader(f))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(stderr, "fleetsim: %s: %v\n", in, err)
		return 1
	}
	rows, err := sprinting.ReplayFromRecording(tr)
	if err != nil {
		fmt.Fprintln(stderr, "fleetsim:", err)
		return 1
	}
	of, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(stderr, "fleetsim:", err)
		return 1
	}
	bw := bufio.NewWriter(of)
	err = sprinting.WriteRequestTraceCSV(bw, rows)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := of.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(stderr, "fleetsim: %s: %v\n", out, err)
		return 1
	}
	fmt.Fprintf(stdout, "converted %s: %d replayable arrivals -> %s\n", in, len(rows), out)
	return 0
}

// writeTrace serializes the recording as JSONL; the file is the durable
// artifact, so every error on the way to disk is fatal to the run.
func writeTrace(path string, tr *sprinting.FleetTrace, stderr io.Writer) int {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, "fleetsim:", err)
		return 1
	}
	bw := bufio.NewWriter(f)
	err = tr.WriteJSONL(bw)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(stderr, "fleetsim: %s: %v\n", path, err)
		return 1
	}
	return 0
}

// printTraceSummary condenses the recording for a human: where the
// dispatcher left the most latency on the table (regret against the
// counterfactual best rejected alternative), and how the p99 tail moved
// window by window.
func printTraceSummary(stdout io.Writer, path string, tr *sprinting.FleetTrace) {
	fmt.Fprintf(stdout, "\ntrace %s: %d records (%d decisions, %d samples, level %s)\n",
		path, len(tr.Records), len(tr.Decisions()), len(tr.Samples()), tr.Meta.Level)
	samples := tr.Samples()
	p99 := make([]float64, len(samples))
	for i, s := range samples {
		p99[i] = s.P99S
	}
	fmt.Fprintf(stdout, "p99 per %.0fs window: %s\n", tr.Meta.WindowS, sprinting.TraceSparkline(p99))
	top := tr.TopRegret(5)
	if len(top) == 0 {
		fmt.Fprintln(stdout, "no regret resolved: every counterfactual alternative was still pending at the end of the trace")
		return
	}
	fmt.Fprintln(stdout, "top regret decisions (realized completion vs best rejected alternative):")
	fmt.Fprintf(stdout, "%10s %-10s %8s %6s %10s %12s %10s\n",
		"at (s)", "kind", "req", "node", "best alt", "done (s)", "regret (s)")
	for _, r := range top {
		fmt.Fprintf(stdout, "%10.3f %-10s %8d %6d %10d %12.3f %10.3f\n",
			r.AtS, r.Kind, r.Req, r.Node, r.BestAlt, r.DoneS, r.RegretS)
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the command against the given streams; main is the only
// caller that attaches real ones (tests drive buffers).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fleetsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes    = fs.Int("nodes", 16, "number of sprint-capable nodes")
		policy   = fs.String("policy", "all", "dispatch policy: round-robin|least-loaded|sprint-aware|hedged|all")
		requests = fs.Int("requests", 100000, "open-loop trace length")
		rate     = fs.Float64("rate", 0, "fleet-wide arrival rate in req/s (0 = ≈85% of sustained capacity)")
		work     = fs.Float64("work", 2, "mean single-core work per request in seconds")
		seed     = fs.Int64("seed", 12345, "trace seed (0 selects the default 12345)")
		queue    = fs.Int("queue", 256, "per-node queue bound (in service + queued)")
		hedgeS   = fs.Float64("hedge-s", 1, "hedged policy: duplicate a request unfinished after this many seconds (0 selects the default 1)")
		workers  = fs.Int("workers", 0, "engine pool size (0 = GOMAXPROCS, 1 = serial)")

		shardWorkers = fs.Int("shard-workers", 0, "shard each simulation's event loop across this many per-worker loops with racks as the shard boundary; results are byte-identical at any count (0 or 1 = classic single loop)")

		exactQ     = fs.Bool("exact-quantiles", false, "buffer and sort every latency for exact quantiles at any scale (default: exact up to 131072 requests, streaming histogram above)")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile after the sweep to this file")

		coordination = fs.String("coordination", "none", "rack coordination: none|uncoordinated|token-permit|probabilistic|all")
		rackSize     = fs.Int("rack-size", 0, "nodes per rack power domain (0 = default 8; needs -coordination)")
		rackBudgetW  = fs.Float64("rack-budget-w", 0, "provisioned power per rack in watts (0 = nominal for all nodes + sprint headroom for a quarter)")
		rackBufferJ  = fs.Float64("rack-buffer-j", 0, "rack ultracap ride-through energy in joules (0 = one §6 ultracap bank per rack)")
		permits      = fs.Int("permits", 0, "token-permit coordination: concurrent sprint permits per rack (0 = derive from the budget)")
		recoveryS    = fs.Float64("recovery-s", 0, "breaker recovery window in seconds (0 = default 2)")

		scenarioPath = fs.String("scenario", "", "JSON scenario file: load phases/ramps, ambient swings, node classes, churn (supersedes -requests and -rate)")

		replayPath   = fs.String("replay", "", "replay a recorded request trace (JSONL or CSV of arrival_s, work_s, optional width/tenant/class) instead of synthesizing arrivals; needs one concrete -policy and -coordination")
		workloadPath = fs.String("workload", "", "JSON multi-tenant workload spec: SLO classes, tenant populations, admission control, dequeue discipline (combine with -scenario to ride its phases)")
		convertTrace = fs.String("convert-trace", "", "read a flight-recorder JSONL recording and write its arrivals as a replayable CSV trace to -replay-out, then exit")
		replayOut    = fs.String("replay-out", "", "destination file for -convert-trace")

		timeoutS      = fs.Float64("timeout-s", 0, "client-side per-request timeout in seconds; an expired attempt retries with exponential backoff (0 disables timeouts)")
		maxRetries    = fs.Int("max-retries", 0, "retries per request before it terminally times out (needs -timeout-s or -fault-prob; 0 = no retries)")
		retryBackoffS = fs.Float64("retry-backoff-s", 0, "base retry backoff in seconds, doubling per attempt with seeded jitter (needs -timeout-s or -fault-prob; 0 = default 0.1)")
		retryBudget   = fs.Float64("retry-budget", 0, "fleet-wide retry budget in tokens/s — a token-bucket cap on retry rate; an empty bucket sheds the request (needs -timeout-s or -fault-prob; 0 = unbudgeted)")
		retryBurst    = fs.Float64("retry-burst", 0, "retry-budget bucket depth in tokens (needs -retry-budget; 0 = max(1, budget))")
		grayFrac      = fs.Float64("gray-frac", 0, "fraction of nodes made gray stragglers — alive but slowed (0 disables gray failures)")
		graySlowdown  = fs.Float64("gray-slowdown", 0, "service-time multiplier on gray nodes (needs -gray-frac; 0 = default 4)")
		faultProb     = fs.Float64("fault-prob", 0, "probability a completed service faults and the client must retry (0 disables transient faults)")

		tracePath       = fs.String("trace", "", "attach the flight recorder and write the recording as JSONL to this file (records one run: pick a single -policy and -coordination)")
		traceLevel      = fs.String("trace-level", "decisions", "flight-recorder capture level: decisions|full (needs -trace)")
		counterfactualK = fs.Int("counterfactual-k", 0, "record this many rejected alternatives per decision and probe their counterfactual finish times (0 = default 3; needs -trace)")
		timelineWindowS = fs.Float64("timeline-window-s", 0, "timeline sample window in seconds (0 = default 5; needs -trace)")
		traceSummary    = fs.Bool("trace-summary", false, "after the report, print the top regret decisions and a per-window p99 sparkline (needs -trace)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// Reject incoherent flag combinations instead of silently ignoring
	// them: a flag that only parameterizes a subsystem the other flags
	// switched off is a user error worth a loud answer.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["permits"] && *coordination != "token-permit" && *coordination != "all" {
		fmt.Fprintf(stderr, "fleetsim: -permits only applies to token-permit coordination (got -coordination %s)\n", *coordination)
		return 2
	}
	for _, f := range []string{"rack-size", "rack-budget-w", "rack-buffer-j", "recovery-s"} {
		if set[f] && *coordination == "none" {
			fmt.Fprintf(stderr, "fleetsim: -%s requires rack coordination (-coordination uncoordinated|token-permit|probabilistic|all)\n", f)
			return 2
		}
	}
	if set["hedge-s"] && *policy != "hedged" && *policy != "all" {
		fmt.Fprintf(stderr, "fleetsim: -hedge-s only applies to the hedged policy (got -policy %s)\n", *policy)
		return 2
	}
	for _, f := range []string{"max-retries", "retry-backoff-s", "retry-budget"} {
		if set[f] && !set["timeout-s"] && !set["fault-prob"] {
			fmt.Fprintf(stderr, "fleetsim: -%s parameterizes retries, but nothing triggers them (add -timeout-s or -fault-prob)\n", f)
			return 2
		}
	}
	if set["retry-burst"] && !set["retry-budget"] {
		fmt.Fprintln(stderr, "fleetsim: -retry-burst sizes the retry-budget bucket (add -retry-budget)")
		return 2
	}
	if set["gray-slowdown"] && !set["gray-frac"] {
		fmt.Fprintln(stderr, "fleetsim: -gray-slowdown needs gray nodes to slow (add -gray-frac)")
		return 2
	}
	if *scenarioPath != "" {
		for _, f := range []string{"requests", "rate"} {
			if set[f] {
				fmt.Fprintf(stderr, "fleetsim: -%s conflicts with -scenario (the scenario file owns the load profile)\n", f)
				return 2
			}
		}
	}
	if set["convert-trace"] != set["replay-out"] {
		fmt.Fprintln(stderr, "fleetsim: -convert-trace and -replay-out go together (read a recording, write a replayable trace)")
		return 2
	}
	if *convertTrace != "" {
		for _, f := range []string{"replay", "workload", "scenario", "trace"} {
			if set[f] {
				fmt.Fprintf(stderr, "fleetsim: -%s conflicts with -convert-trace (conversion runs no simulation)\n", f)
				return 2
			}
		}
		return convertRecording(*convertTrace, *replayOut, stdout, stderr)
	}
	if *replayPath != "" {
		for _, f := range []string{"scenario", "workload", "trace", "requests", "rate", "work"} {
			if set[f] {
				fmt.Fprintf(stderr, "fleetsim: -%s conflicts with -replay (the trace owns the load profile)\n", f)
				return 2
			}
		}
		if *policy == "all" || *coordination == "all" {
			fmt.Fprintf(stderr, "fleetsim: -replay replays a single run; pick one -policy and one -coordination (got -policy %s, -coordination %s)\n",
				*policy, *coordination)
			return 2
		}
	}
	if *workloadPath != "" {
		for _, f := range []string{"requests", "rate", "work", "trace"} {
			if set[f] {
				fmt.Fprintf(stderr, "fleetsim: -%s conflicts with -workload (the workload spec owns the load profile)\n", f)
				return 2
			}
		}
	}
	for _, f := range []string{"trace-level", "counterfactual-k", "timeline-window-s", "trace-summary"} {
		if set[f] && *tracePath == "" {
			fmt.Fprintf(stderr, "fleetsim: -%s parameterizes the flight recorder (add -trace out.jsonl)\n", f)
			return 2
		}
	}
	if *tracePath != "" && (*policy == "all" || *coordination == "all") {
		fmt.Fprintf(stderr, "fleetsim: -trace records a single run; pick one -policy and one -coordination (got -policy %s, -coordination %s)\n",
			*policy, *coordination)
		return 2
	}
	var traceCfg sprinting.TraceConfig
	if *tracePath != "" {
		lvl, err := sprinting.ParseTraceLevel(*traceLevel)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 2
		}
		if lvl == sprinting.TraceOff {
			fmt.Fprintln(stderr, "fleetsim: -trace-level off contradicts -trace (drop -trace to disable the recorder)")
			return 2
		}
		traceCfg = sprinting.TraceConfig{Level: lvl, TopK: *counterfactualK, WindowS: *timelineWindowS}
	}

	var policies []sprinting.FleetPolicy
	if *policy == "all" {
		policies = sprinting.FleetPolicies()
	} else {
		p, err := sprinting.ParseFleetPolicy(*policy)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 2
		}
		policies = []sprinting.FleetPolicy{p}
	}

	var coords []sprinting.RackCoordination
	if *coordination == "all" {
		coords = sprinting.RackCoordinations()
	} else {
		c, err := sprinting.ParseRackCoordination(*coordination)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 2
		}
		coords = []sprinting.RackCoordination{c}
	}
	rackMode := len(coords) > 1 || coords[0] != sprinting.RackNoCoordination

	// mkCfg builds one run's config from the shared flags for the modes
	// that own their load profile (replay and workload), so Requests and
	// ArrivalRatePerS stay out of it.
	mkCfg := func(p sprinting.FleetPolicy, c sprinting.RackCoordination) sprinting.FleetConfig {
		cfg := sprinting.DefaultFleetConfig(p)
		cfg.Nodes = *nodes
		cfg.MeanWorkS = *work
		cfg.Seed = *seed
		cfg.QueueCap = *queue
		cfg.HedgeDelayS = *hedgeS
		cfg.ExactQuantiles = *exactQ
		cfg.Coordination = c
		cfg.RackSize = *rackSize
		cfg.RackPowerBudgetW = *rackBudgetW
		cfg.RackBufferJ = *rackBufferJ
		cfg.SprintPermits = *permits
		cfg.BreakerRecoveryS = *recoveryS
		cfg.Reliability = sprinting.FleetReliability{
			TimeoutS: *timeoutS, MaxRetries: *maxRetries, RetryBackoffS: *retryBackoffS,
			RetryBudgetPerS: *retryBudget, RetryBurst: *retryBurst,
			GrayFrac: *grayFrac, GraySlowdownX: *graySlowdown, FaultProb: *faultProb,
		}
		cfg.Workers = *shardWorkers
		return cfg
	}

	if *replayPath != "" {
		data, err := os.ReadFile(*replayPath)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
		rows, err := sprinting.ParseRequestTrace(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintf(stderr, "fleetsim: %s: %v\n", *replayPath, err)
			return 1
		}
		m, err := sprinting.SimulateReplayContext(ctx, mkCfg(policies[0], coords[0]), rows, nil)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
		fmt.Fprintf(stdout, "replay %s: %d recorded arrivals, %d nodes (seed %d)\n\n",
			*replayPath, len(rows), *nodes, *seed)
		if m.ApproxQuantiles {
			fmt.Fprintln(stdout, "quantiles: streaming log-scale histogram (within 1.81%; mean/max exact) — use -exact-quantiles to buffer")
		}
		printRunTable(stdout, rackMode, []sprinting.FleetMetrics{m})
		return 0
	}

	var wspec *sprinting.FleetWorkload
	if *workloadPath != "" {
		data, err := os.ReadFile(*workloadPath)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
		var w sprinting.FleetWorkload
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&w); err != nil {
			fmt.Fprintf(stderr, "fleetsim: %s: %v\n", *workloadPath, err)
			return 1
		}
		wspec = &w
	}
	if wspec != nil && *scenarioPath == "" {
		fmt.Fprintf(stdout, "workload %s: %d classes, %d tenants, %d nodes (seed %d)\n\n",
			*workloadPath, len(wspec.Classes), len(wspec.Tenants), *nodes, *seed)
		var metrics []sprinting.FleetMetrics
		for _, p := range policies {
			for _, c := range coords {
				m, err := sprinting.SimulateWorkloadContext(ctx, mkCfg(p, c), *wspec)
				if err != nil {
					fmt.Fprintln(stderr, "fleetsim:", err)
					return 1
				}
				metrics = append(metrics, m)
			}
		}
		if len(metrics) > 0 && metrics[0].ApproxQuantiles {
			fmt.Fprintln(stdout, "quantiles: streaming log-scale histogram (within 1.81%; mean/max exact) — use -exact-quantiles to buffer")
		}
		printRunTable(stdout, rackMode, metrics)
		return 0
	}

	if *scenarioPath != "" {
		data, err := os.ReadFile(*scenarioPath)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
		var scen sprinting.FleetScenario
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&scen); err != nil {
			fmt.Fprintf(stderr, "fleetsim: %s: %v\n", *scenarioPath, err)
			return 1
		}
		// Class declarations size the fleet; an explicit -nodes that
		// disagrees is rejected like the other scenario conflicts rather
		// than silently overridden.
		if classNodes := scen.Nodes(); set["nodes"] && classNodes > 0 && classNodes != *nodes {
			fmt.Fprintf(stderr, "fleetsim: -nodes %d conflicts with the scenario's classes (%d nodes); drop -nodes or fix the class counts\n",
				*nodes, classNodes)
			return 2
		}
		var scs []sprinting.ScenarioConfig
		for _, p := range policies {
			for _, c := range coords {
				cfg := sprinting.DefaultFleetConfig(p)
				cfg.Nodes = *nodes
				cfg.MeanWorkS = *work
				cfg.Seed = *seed
				cfg.QueueCap = *queue
				cfg.HedgeDelayS = *hedgeS
				cfg.ExactQuantiles = *exactQ
				cfg.Coordination = c
				cfg.RackSize = *rackSize
				cfg.RackPowerBudgetW = *rackBudgetW
				cfg.RackBufferJ = *rackBufferJ
				cfg.SprintPermits = *permits
				cfg.BreakerRecoveryS = *recoveryS
				cfg.Reliability = sprinting.FleetReliability{
					TimeoutS: *timeoutS, MaxRetries: *maxRetries, RetryBackoffS: *retryBackoffS,
					RetryBudgetPerS: *retryBudget, RetryBurst: *retryBurst,
					GrayFrac: *grayFrac, GraySlowdownX: *graySlowdown, FaultProb: *faultProb,
				}
				cfg.Workers = *shardWorkers
				cfg.Trace = traceCfg
				scs = append(scs, sprinting.ScenarioConfig{Fleet: cfg, Scenario: scen})
			}
		}
		if wspec != nil {
			var metrics []sprinting.FleetMetrics
			for _, sc := range scs {
				m, err := sprinting.SimulateScenarioWorkloadContext(ctx, sc, *wspec)
				if err != nil {
					fmt.Fprintln(stderr, "fleetsim:", err)
					return 1
				}
				metrics = append(metrics, m)
			}
			printScenarioReport(*scenarioPath, scen, metrics, stdout)
			return 0
		}
		if *tracePath != "" {
			m, tr, err := sprinting.SimulateScenarioTracedContext(ctx, scs[0])
			if err != nil {
				fmt.Fprintln(stderr, "fleetsim:", err)
				return 1
			}
			if code := writeTrace(*tracePath, tr, stderr); code != 0 {
				return code
			}
			printScenarioReport(*scenarioPath, scen, []sprinting.FleetMetrics{m}, stdout)
			if *traceSummary {
				printTraceSummary(stdout, *tracePath, tr)
			}
			return 0
		}
		return runScenario(ctx, *scenarioPath, scen, scs, *workers, stdout, stderr)
	}

	var cfgs []sprinting.FleetConfig
	for _, p := range policies {
		for _, c := range coords {
			cfg := sprinting.DefaultFleetConfig(p)
			cfg.Nodes = *nodes
			cfg.Requests = *requests
			cfg.ArrivalRatePerS = *rate
			cfg.MeanWorkS = *work
			cfg.Seed = *seed
			cfg.QueueCap = *queue
			cfg.HedgeDelayS = *hedgeS
			cfg.ExactQuantiles = *exactQ
			cfg.Coordination = c
			cfg.RackSize = *rackSize
			cfg.RackPowerBudgetW = *rackBudgetW
			cfg.RackBufferJ = *rackBufferJ
			cfg.SprintPermits = *permits
			cfg.BreakerRecoveryS = *recoveryS
			cfg.Reliability = sprinting.FleetReliability{
				TimeoutS: *timeoutS, MaxRetries: *maxRetries, RetryBackoffS: *retryBackoffS,
				RetryBudgetPerS: *retryBudget, RetryBurst: *retryBurst,
				GrayFrac: *grayFrac, GraySlowdownX: *graySlowdown, FaultProb: *faultProb,
			}
			cfg.Workers = *shardWorkers
			cfg.Trace = traceCfg
			cfgs = append(cfgs, cfg)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	fmt.Fprintf(stdout, "fleet: %d nodes, %d requests at %.2f req/s (mean work %.1f s, seed %d)\n\n",
		*nodes, *requests, cfgs[0].EffectiveRatePerS(), *work, *seed)
	var (
		metrics []sprinting.FleetMetrics
		tr      *sprinting.FleetTrace
	)
	if *tracePath != "" {
		m, rec, err := sprinting.SimulateFleetTracedContext(ctx, cfgs[0])
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
		if code := writeTrace(*tracePath, rec, stderr); code != 0 {
			return code
		}
		metrics, tr = []sprinting.FleetMetrics{m}, rec
	} else {
		var err error
		metrics, err = sprinting.SimulateFleetSweepContext(ctx, cfgs, *workers)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, "fleetsim:", err)
			return 1
		}
	}
	if len(metrics) > 0 && metrics[0].ApproxQuantiles {
		fmt.Fprintln(stdout, "quantiles: streaming log-scale histogram (within 1.81%; mean/max exact) — use -exact-quantiles to buffer")
	}

	printRunTable(stdout, rackMode, metrics)
	if rackMode {
		fmt.Fprintln(stdout, "\nuncoordinated sprints can trip the rack breaker; token permits make trips impossible by construction")
	} else {
		fmt.Fprintln(stdout, "\nsprint-aware dispatch routes on thermal headroom; hedging trades duplicated energy for tail latency")
	}
	if tr != nil && *traceSummary {
		printTraceSummary(stdout, *tracePath, tr)
	}
	return 0
}
