package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOut drives the command and returns (stdout, exit code).
func runOut(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), args, &out, &errb)
	if code != 0 {
		t.Logf("stderr: %s", errb.String())
	}
	return out.String(), code
}

func TestSmoke(t *testing.T) {
	out, code := runOut(t, "-nodes", "4", "-requests", "300", "-policy", "sprint-aware")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"fleet: 4 nodes", "sprint-aware", "p999"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAllPoliciesListed(t *testing.T) {
	out, code := runOut(t, "-nodes", "4", "-requests", "300")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"round-robin", "least-loaded", "sprint-aware", "hedged"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing policy %q", want)
		}
	}
}

// TestWorkerCountDoesNotChangeOutput is the binary-level determinism
// guarantee: simulations are pure functions of their configs and the
// engine returns results in config order, so serial and parallel sweeps
// render byte-identical reports.
func TestWorkerCountDoesNotChangeOutput(t *testing.T) {
	args := []string{"-nodes", "32", "-requests", "3000", "-seed", "9"}
	serial, code := runOut(t, append(args, "-workers", "1")...)
	if code != 0 {
		t.Fatalf("serial exit %d", code)
	}
	wide, code := runOut(t, append(args, "-workers", "8")...)
	if code != 0 {
		t.Fatalf("wide exit %d", code)
	}
	if serial != wide {
		t.Errorf("workers=1 and workers=8 differ:\n--- serial ---\n%s\n--- wide ---\n%s", serial, wide)
	}
}

func TestBadFlagsFail(t *testing.T) {
	if _, code := runOut(t, "-bogus"); code != 2 {
		t.Errorf("bad flag should exit 2, got %d", code)
	}
	if _, code := runOut(t, "-policy", "nope"); code != 2 {
		t.Errorf("bad policy should exit 2, got %d", code)
	}
	if _, code := runOut(t, "-nodes", "-3"); code != 1 {
		t.Errorf("invalid config should exit 1, got %d", code)
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	if code := run(ctx, []string{"-nodes", "16", "-requests", "50000"}, &out, &errb); code != 1 {
		t.Errorf("cancelled run should exit 1, got %d", code)
	}
}

// TestRackCoordinationSmoke drives the rack power-domain mode: the report
// switches to the coordination columns and shows the headline contrast
// (uncoordinated trips, token-permit never).
func TestRackCoordinationSmoke(t *testing.T) {
	out, code := runOut(t, "-nodes", "16", "-requests", "2000", "-policy", "sprint-aware",
		"-coordination", "all", "-rack-size", "16", "-rack-budget-w", "31", "-rate", "9.6")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"uncoordinated", "token-permit", "probabilistic", "trips", "rack-thr(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRackWorkerCountDoesNotChangeOutput extends the binary-level
// determinism guarantee to rack coordination: the probabilistic admission
// stream is part of the per-simulation state, so serial and parallel
// sweeps render byte-identical reports.
func TestRackWorkerCountDoesNotChangeOutput(t *testing.T) {
	args := []string{"-nodes", "32", "-requests", "2000", "-seed", "9",
		"-coordination", "all", "-rack-size", "16", "-rack-budget-w", "31"}
	serial, code := runOut(t, append(args, "-workers", "1")...)
	if code != 0 {
		t.Fatalf("serial exit %d", code)
	}
	wide, code := runOut(t, append(args, "-workers", "8")...)
	if code != 0 {
		t.Fatalf("wide exit %d", code)
	}
	if serial != wide {
		t.Errorf("workers=1 and workers=8 differ:\n--- serial ---\n%s\n--- wide ---\n%s", serial, wide)
	}
}

func TestBadRackFlagsFail(t *testing.T) {
	if _, code := runOut(t, "-coordination", "nope"); code != 2 {
		t.Errorf("bad coordination should exit 2, got %d", code)
	}
	if _, code := runOut(t, "-coordination", "uncoordinated", "-rack-size", "-2"); code != 1 {
		t.Errorf("invalid rack config should exit 1, got %d", code)
	}
}

// TestHedgeSuppressionReported drives an overloaded hedged fleet and
// checks the suppressed-hedge count reaches the report (the bugfix for
// hedges that silently vanished when no node had spare capacity).
func TestHedgeSuppressionReported(t *testing.T) {
	out, code := runOut(t, "-nodes", "4", "-requests", "2000", "-policy", "hedged",
		"-queue", "2", "-rate", "4")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "suppressed (no spare capacity)") {
		t.Errorf("output missing the suppressed-hedge count:\n%s", out)
	}
}

// TestProfileFlags exercises -cpuprofile/-memprofile: both files must be
// created non-empty and the run must still succeed.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	_, code := runOut(t, "-nodes", "4", "-requests", "500", "-policy", "least-loaded",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestExactQuantilesFlag: the flag must parse and the sweep still run;
// with a small trace both modes are exact so the output is unchanged.
func TestExactQuantilesFlag(t *testing.T) {
	base, code := runOut(t, "-nodes", "4", "-requests", "300", "-policy", "sprint-aware")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	exact, code := runOut(t, "-nodes", "4", "-requests", "300", "-policy", "sprint-aware", "-exact-quantiles")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if base != exact {
		t.Errorf("small traces are exact either way; output differed:\n%s\n---\n%s", base, exact)
	}
}

// TestIncoherentFlagCombinationsRejected pins the flag-coherence errors:
// a flag that parameterizes a subsystem the other flags switched off is
// rejected loudly instead of silently ignored.
func TestIncoherentFlagCombinationsRejected(t *testing.T) {
	cases := [][]string{
		{"-permits", "4"}, // permits without token-permit
		{"-permits", "4", "-coordination", "uncoordinated"},
		{"-rack-size", "16"}, // rack flags without coordination
		{"-rack-budget-w", "31"},
		{"-rack-buffer-j", "50"},
		{"-recovery-s", "3"},
		{"-hedge-s", "0.5", "-policy", "sprint-aware"}, // hedge delay without hedging
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 2 {
			t.Errorf("%v: want exit 2, got %d (stderr: %s)", args, code, errb.String())
		}
	}
	// The same flags are accepted when the subsystem is on (or "all"
	// includes it).
	good := [][]string{
		{"-nodes", "4", "-requests", "200", "-permits", "2", "-coordination", "token-permit"},
		{"-nodes", "4", "-requests", "200", "-permits", "2", "-coordination", "all", "-policy", "sprint-aware"},
		{"-nodes", "4", "-requests", "200", "-hedge-s", "0.5", "-policy", "hedged"},
		{"-nodes", "4", "-requests", "200", "-rack-size", "4", "-coordination", "uncoordinated", "-policy", "sprint-aware"},
	}
	for _, args := range good {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 0 {
			t.Errorf("%v: want exit 0, got %d (stderr: %s)", args, code, errb.String())
		}
	}
}

// writeScenario drops a scenario file for the CLI tests.
func writeScenario(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const flashScenario = `{
  "base_rate_per_s": 7.2,
  "phases": [
    {"name": "baseline", "duration_s": 60, "start_factor": 0.7},
    {"name": "surge", "duration_s": 40, "start_factor": 2.0},
    {"name": "recovery", "duration_s": 60, "shape": "decay", "start_factor": 2.0, "end_factor": 0.5}
  ],
  "churn": {"mtbf_s": 20, "mean_downtime_s": 5}
}`

// TestScenarioMode drives -scenario end to end: the report switches to
// per-phase sections with the scenario's phase names and an overall line.
func TestScenarioMode(t *testing.T) {
	p := writeScenario(t, flashScenario)
	out, code := runOut(t, "-scenario", p, "-policy", "sprint-aware")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"3 phases over 160 s", "baseline", "surge", "recovery", "overall:", "failures", "redisp"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario report missing %q:\n%s", want, out)
		}
	}
}

// TestScenarioWorkerCountDoesNotChangeOutput is the acceptance-criteria
// determinism check at the binary level: a flash-crowd + churn scenario
// sweep renders byte-identical reports at every worker count.
func TestScenarioWorkerCountDoesNotChangeOutput(t *testing.T) {
	p := writeScenario(t, flashScenario)
	args := []string{"-scenario", p, "-policy", "all", "-coordination", "all", "-seed", "9"}
	serial, code := runOut(t, append(args, "-workers", "1")...)
	if code != 0 {
		t.Fatalf("serial exit %d", code)
	}
	wide, code := runOut(t, append(args, "-workers", "8")...)
	if code != 0 {
		t.Fatalf("wide exit %d", code)
	}
	if serial != wide {
		t.Errorf("workers=1 and workers=8 differ:\n--- serial ---\n%s\n--- wide ---\n%s", serial, wide)
	}
}

// TestScenarioFlagErrors: the scenario file owns the load profile, so
// -requests/-rate are rejected; unreadable files, malformed JSON, unknown
// fields, and invalid scenarios all fail with distinct diagnostics.
func TestScenarioFlagErrors(t *testing.T) {
	p := writeScenario(t, flashScenario)
	if _, code := runOut(t, "-scenario", p, "-requests", "100"); code != 2 {
		t.Errorf("-scenario with -requests should exit 2, got %d", code)
	}
	if _, code := runOut(t, "-scenario", p, "-rate", "3"); code != 2 {
		t.Errorf("-scenario with -rate should exit 2, got %d", code)
	}
	if _, code := runOut(t, "-scenario", filepath.Join(t.TempDir(), "missing.json")); code != 1 {
		t.Errorf("missing scenario file should exit 1, got %d", code)
	}
	if _, code := runOut(t, "-scenario", writeScenario(t, "{not json")); code != 1 {
		t.Errorf("malformed JSON should exit 1, got %d", code)
	}
	if _, code := runOut(t, "-scenario", writeScenario(t, `{"phases": [{"duration_s": 10}], "bogus_field": 1}`)); code != 1 {
		t.Errorf("unknown scenario field should exit 1, got %d", code)
	}
	if _, code := runOut(t, "-scenario", writeScenario(t, `{"phases": []}`)); code != 1 {
		t.Errorf("phase-free scenario should exit 1, got %d", code)
	}
}

// TestScenarioClassNodesConflict: an explicit -nodes that disagrees with
// the scenario's class counts is rejected like the other scenario
// conflicts, never silently overridden.
func TestScenarioClassNodesConflict(t *testing.T) {
	p := writeScenario(t, `{
  "phases": [{"name": "steady", "duration_s": 30}],
  "classes": [{"name": "a", "count": 4}, {"name": "b", "count": 4}]
}`)
	if _, code := runOut(t, "-scenario", p, "-nodes", "500"); code != 2 {
		t.Errorf("-nodes conflicting with class counts should exit 2, got %d", code)
	}
	// Matching -nodes, or omitting it, both run.
	if out, code := runOut(t, "-scenario", p, "-nodes", "8"); code != 0 {
		t.Errorf("matching -nodes should run, got exit %d:\n%s", code, out)
	}
	if out, code := runOut(t, "-scenario", p); code != 0 || !strings.Contains(out, "8 nodes") {
		t.Errorf("class-derived fleet should report 8 nodes (exit %d):\n%s", code, out)
	}
}

// TestTraceFlagCoherence extends the coherence contract to the flight
// recorder: every knob that parameterizes it demands -trace, and -trace
// itself demands a single concrete policy × coordination.
func TestTraceFlagCoherence(t *testing.T) {
	cases := [][]string{
		{"-trace-level", "full"}, // recorder knobs without -trace
		{"-counterfactual-k", "5"},
		{"-timeline-window-s", "2"},
		{"-trace-summary"},
		{"-trace", "out.jsonl"}, // default -policy all
		{"-trace", "out.jsonl", "-policy", "sprint-aware", "-coordination", "all"},
		{"-trace", "out.jsonl", "-policy", "hedged", "-trace-level", "off"},
		{"-trace", "out.jsonl", "-policy", "hedged", "-trace-level", "bogus"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 2 {
			t.Errorf("%v: want exit 2, got %d (stderr: %s)", args, code, errb.String())
		}
	}
}

// TestTraceOutput drives -trace end to end: the JSONL file leads with the
// meta header, carries one record per line, and -trace-summary appends
// the regret table and the p99 sparkline to the report.
func TestTraceOutput(t *testing.T) {
	p := filepath.Join(t.TempDir(), "out.jsonl")
	out, code := runOut(t, "-nodes", "4", "-requests", "300", "-policy", "sprint-aware",
		"-trace", p, "-trace-level", "full", "-counterfactual-k", "2", "-timeline-window-s", "2",
		"-trace-summary")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
	if !bytes.HasPrefix(data, []byte(`{"t":"meta"`)) {
		t.Errorf("trace does not lead with the meta header: %.80s", data)
	}
	lines := bytes.Count(data, []byte("\n"))
	if lines < 300 {
		t.Errorf("trace has %d lines; want at least one per request", lines)
	}
	for _, want := range []string{"trace " + p, "p99 per 2s window:", "regret"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// The report table itself is unchanged by tracing.
	plain, code := runOut(t, "-nodes", "4", "-requests", "300", "-policy", "sprint-aware")
	if code != 0 {
		t.Fatalf("plain exit %d", code)
	}
	if !strings.HasPrefix(out, plain[:strings.Index(plain, "\nsprint-aware dispatch routes")]) {
		t.Errorf("traced report diverges from the untraced one:\n%s\n---\n%s", out, plain)
	}
}

// TestTraceScenarioOutput: tracing composes with -scenario — the per-phase
// report still renders, and the trace file carries the phase annotations.
func TestTraceScenarioOutput(t *testing.T) {
	sp := writeScenario(t, flashScenario)
	p := filepath.Join(t.TempDir(), "flash.jsonl")
	out, code := runOut(t, "-scenario", sp, "-policy", "sprint-aware", "-coordination", "token-permit",
		"-trace", p, "-trace-summary")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"baseline", "surge", "recovery", "overall:", "p99 per 5s window:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
	for _, want := range []string{`"kind":"phase-start"`, `"name":"surge"`, `"kind":"node-fail"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("scenario trace missing %s", want)
		}
	}
}

// TestReliabilityFlagCoherence extends the coherence contract to the
// reliability layer: retry knobs demand a retry trigger (-timeout-s or
// -fault-prob), -retry-burst demands -retry-budget, and -gray-slowdown
// demands -gray-frac.
func TestReliabilityFlagCoherence(t *testing.T) {
	cases := [][]string{
		{"-max-retries", "3"}, // retry knobs with nothing to trigger them
		{"-retry-backoff-s", "0.2"},
		{"-retry-budget", "5"},
		{"-retry-burst", "10", "-timeout-s", "4"}, // burst without a budget
		{"-gray-slowdown", "8"},                   // slowdown without gray nodes
		{"-timeout-s", "-1"},                      // invalid values reach Validate via exit 1, not 2
	}
	for _, args := range cases[:len(cases)-1] {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 2 {
			t.Errorf("%v: want exit 2, got %d (stderr: %s)", args, code, errb.String())
		}
	}
	if _, code := runOut(t, "-nodes", "4", "-requests", "100", "-timeout-s", "-1"); code != 1 {
		t.Errorf("negative -timeout-s should exit 1 via Validate, got %d", code)
	}
	good := [][]string{
		{"-nodes", "4", "-requests", "200", "-timeout-s", "5", "-max-retries", "2", "-retry-budget", "5", "-retry-burst", "10"},
		{"-nodes", "4", "-requests", "200", "-fault-prob", "0.05", "-max-retries", "2"},
		{"-nodes", "4", "-requests", "200", "-gray-frac", "0.25", "-gray-slowdown", "6"},
	}
	for _, args := range good {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 0 {
			t.Errorf("%v: want exit 0, got %d (stderr: %s)", args, code, errb.String())
		}
	}
}

// TestReliabilityReported drives fault injection end to end: gray nodes
// plus a tight timeout must surface the reliability line with goodput,
// retry, and gray-node counts.
func TestReliabilityReported(t *testing.T) {
	out, code := runOut(t, "-nodes", "4", "-requests", "800", "-policy", "least-loaded",
		"-gray-frac", "0.5", "-gray-slowdown", "8", "-timeout-s", "4", "-max-retries", "2")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"goodput", "timed out", "shed", "amplification", "2 gray nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestTraceUnwritablePathFails: a trace destination that cannot be
// created fails the run after simulation with exit 1.
func TestTraceUnwritablePathFails(t *testing.T) {
	if _, code := runOut(t, "-nodes", "4", "-requests", "100", "-policy", "sprint-aware",
		"-trace", filepath.Join(t.TempDir(), "no", "such", "dir", "out.jsonl")); code != 1 {
		t.Errorf("unwritable trace path should exit 1, got %d", code)
	}
}

// TestReplayWorkloadFlagCoherence: replay and workload runs own their
// load profile, so load-shaping flags, multi-run sweeps, and each other
// are rejected up front with exit 2; -convert-trace and -replay-out are
// a pair.
func TestReplayWorkloadFlagCoherence(t *testing.T) {
	cases := [][]string{
		{"-replay", "t.csv"}, // default -policy all: replay wants one run
		{"-replay", "t.csv", "-policy", "sprint-aware", "-coordination", "all"},
		{"-replay", "t.csv", "-policy", "sprint-aware", "-requests", "100"},
		{"-replay", "t.csv", "-policy", "sprint-aware", "-rate", "2"},
		{"-replay", "t.csv", "-policy", "sprint-aware", "-workload", "w.json"},
		{"-replay", "t.csv", "-policy", "sprint-aware", "-scenario", "s.json"},
		{"-workload", "w.json", "-requests", "100"},
		{"-workload", "w.json", "-work", "2"},
		{"-convert-trace", "rec.jsonl"}, // missing -replay-out
		{"-replay-out", "t.csv"},        // missing -convert-trace
		{"-convert-trace", "rec.jsonl", "-replay-out", "t.csv", "-trace", "x.jsonl"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 2 {
			t.Errorf("%v: want exit 2, got %d (stderr: %s)", args, code, errb.String())
		}
	}
	// Missing or malformed inputs are runtime errors (exit 1), not usage.
	if _, code := runOut(t, "-replay", filepath.Join(t.TempDir(), "absent.csv"),
		"-policy", "sprint-aware", "-coordination", "none"); code != 1 {
		t.Errorf("absent replay trace: want exit 1, got %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"classes": [], "bogus": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, code := runOut(t, "-workload", bad); code != 1 {
		t.Errorf("unknown workload field: want exit 1, got %d", code)
	}
}

// TestConvertReplayRoundTrip closes the record→replay loop at the CLI:
// record a run, convert the recording, and replay it — the replay report
// is byte-identical at every -shard-workers count.
func TestConvertReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec := filepath.Join(dir, "rec.jsonl")
	if _, code := runOut(t, "-nodes", "4", "-requests", "400", "-policy", "sprint-aware",
		"-trace", rec); code != 0 {
		t.Fatalf("record exit %d", code)
	}
	trace := filepath.Join(dir, "trace.csv")
	out, code := runOut(t, "-convert-trace", rec, "-replay-out", trace)
	if code != 0 {
		t.Fatalf("convert exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "converted") || !strings.Contains(out, "400 replayable arrivals") {
		t.Errorf("convert summary missing counts:\n%s", out)
	}
	var reports []string
	for _, w := range []string{"1", "4"} {
		r, code := runOut(t, "-nodes", "4", "-policy", "sprint-aware", "-coordination", "none",
			"-replay", trace, "-shard-workers", w)
		if code != 0 {
			t.Fatalf("replay (workers %s) exit %d:\n%s", w, code, r)
		}
		reports = append(reports, r)
	}
	if reports[0] != reports[1] {
		t.Errorf("replay report changes with -shard-workers:\n%s\n---\n%s", reports[0], reports[1])
	}
	for _, want := range []string{"replay " + trace, "400 recorded arrivals", "sprint-aware"} {
		if !strings.Contains(reports[0], want) {
			t.Errorf("replay report missing %q:\n%s", want, reports[0])
		}
	}
}

const tinyWorkload = `{
  "classes": [
    {"name": "interactive", "priority": 0, "target_p99_s": 2.0},
    {"name": "batch", "priority": 5}
  ],
  "tenants": [
    {"name": "search", "class": "interactive",
     "arrival": {"process": "poisson", "rate_per_s": 2.0},
     "work": {"dist": "exp", "mean_s": 1.0}},
    {"name": "analytics", "class": "batch",
     "arrival": {"process": "poisson", "rate_per_s": 1.0},
     "work": {"dist": "exp", "mean_s": 2.0}}
  ],
  "discipline": "priority",
  "duration_s": 150
}`

// TestWorkloadMode drives -workload end to end: the header names the
// spec, and the report carries a per-class block with SLO attainment and
// the fairness line.
func TestWorkloadMode(t *testing.T) {
	p := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(p, []byte(tinyWorkload), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runOut(t, "-nodes", "4", "-policy", "sprint-aware", "-workload", p)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"workload " + p, "2 classes, 2 tenants",
		"interactive", "batch", "Jain fairness"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	wide, code := runOut(t, "-nodes", "4", "-policy", "sprint-aware", "-workload", p,
		"-shard-workers", "4")
	if code != 0 {
		t.Fatalf("wide exit %d", code)
	}
	if out != wide {
		t.Errorf("workload report changes with -shard-workers:\n%s\n---\n%s", out, wide)
	}
}

// TestWorkloadScenarioMode: a workload spec rides a scenario's phases —
// the per-phase report renders and each run ends with the per-class
// block.
func TestWorkloadScenarioMode(t *testing.T) {
	sp := writeScenario(t, flashScenario)
	wp := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(wp, []byte(tinyWorkload), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runOut(t, "-scenario", sp, "-workload", wp,
		"-policy", "sprint-aware", "-coordination", "token-permit")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"baseline", "surge", "recovery", "overall:",
		"interactive", "batch", "Jain fairness"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
