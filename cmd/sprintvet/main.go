// Command sprintvet is the multichecker for the sprinting module's
// first-party static-analysis suite (internal/analysis): the
// nondeterminism, floatorder, allocfree, and tracehook analyzers that
// enforce the simulator's determinism and hot-path contracts.
//
// It runs two ways:
//
//	sprintvet [packages]            # standalone, defaults to ./...
//	go vet -vettool=$(pwd)/bin/sprintvet ./...
//
// The second form speaks cmd/go's vet-tool protocol (the same one
// golang.org/x/tools/go/analysis/unitchecker implements): go vet
// invokes the tool once per package with a JSON config file argument
// ending in .cfg that names the sources and the export data of every
// dependency, and the tool type-checks the unit, runs the analyzers,
// prints findings to stderr, and exits non-zero if there were any.
//
// Findings are suppressed in place with `//sprintvet:ignore
// <analyzer>[,<analyzer>] <reason>`; the reason is mandatory and a
// malformed directive is itself a finding. Exit status: 0 clean,
// 1 internal error, 2 findings.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sprinting/internal/analysis"
)

// version is reported to `sprintvet -V=full`, which cmd/go hashes into
// its vet result cache key: bump it when analyzer behavior changes so
// stale clean verdicts are not replayed from the cache.
const version = "v1.0.0"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	for _, a := range args {
		// cmd/go probes the tool's identity for its cache key.
		if a == "-V=full" || a == "-V" {
			fmt.Fprintf(stdout, "sprintvet version %s\n", version)
			return 0
		}
		// cmd/go may query the tool's analyzer flags; sprintvet has none.
		if a == "-flags" {
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnit(args[0], stderr)
	}
	return runStandalone(args, stdout, stderr)
}

// runStandalone loads the patterns (default ./...) from the current
// directory and reports every finding.
func runStandalone(patterns []string, stdout, stderr io.Writer) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "sprintvet: %v\n", err)
		return 1
	}
	diags, err := analysis.Run(pkgs, analysis.Analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "sprintvet: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	return 2
}

// unitConfig is the JSON config cmd/go hands a vet tool for one
// compilation unit (the same schema unitchecker consumes; unknown
// fields are ignored).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one unit under the go vet protocol.
func runUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "sprintvet: %v\n", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "sprintvet: %s: %v\n", cfgPath, err)
		return 1
	}
	// The protocol requires the facts file to exist even though
	// sprintvet's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "sprintvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := analysis.ExportDataImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := analysis.CheckFiles(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles, goVersion(cfg.GoVersion))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "sprintvet: %v\n", err)
		return 1
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analysis.Analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "sprintvet: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(stderr, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	return 2
}

// goVersion normalizes cmd/go's GoVersion field ("go1.24.0") to the
// "go1.24" language-version form go/types accepts, dropping anything
// unparseable.
func goVersion(v string) string {
	if !strings.HasPrefix(v, "go1") {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}
