package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// violationsPkg is the deliberately-broken fixture with one finding per
// analyzer; it lives under testdata/src so ./... never matches it and
// only explicit naming reaches it.
const violationsPkg = "sprinting/internal/analysis/testdata/src/violations"

// TestVersionFlag: cmd/go probes `-V=full` and hashes the reply into its
// vet cache key, so the output must carry the version and nothing else.
func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exit = %d, stderr: %s", code, stderr.String())
	}
	got := strings.TrimSpace(stdout.String())
	want := "sprintvet version " + version
	if got != want {
		t.Errorf("-V=full output = %q, want %q", got, want)
	}
	if fields := strings.Fields(got); len(fields) < 3 {
		t.Errorf("-V=full output %q has %d fields; cmd/go requires at least 3", got, len(fields))
	}
}

// TestViolationsFixtureFails: the seeded fixture must trip every
// analyzer and exit 2.
func TestViolationsFixtureFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{violationsPkg}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("violations fixture exit = %d, want 2\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, a := range []string{"nondeterminism", "floatorder", "allocfree", "tracehook"} {
		if !strings.Contains(out, ": "+a+": ") {
			t.Errorf("no %s finding in fixture output:\n%s", a, out)
		}
	}
}

// TestRepoIsClean: the module's own code must come back with zero
// findings — every true positive is fixed or carries a reasoned
// suppression.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"sprinting/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("sprintvet over sprinting/... exit = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
}

// TestGoVetVettool drives the real protocol: build the binary, hand it
// to `go vet -vettool`, and check that the violations fixture fails
// while a clean package passes.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "sprintvet")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sprintvet: %v\n%s", err, out)
	}

	vet := func(pkg string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, pkg)
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	out, err := vet(violationsPkg)
	if err == nil {
		t.Fatalf("go vet -vettool over the violations fixture passed; want failure\n%s", out)
	}
	for _, a := range []string{"nondeterminism", "floatorder", "allocfree", "tracehook"} {
		if !strings.Contains(out, a) {
			t.Errorf("go vet output missing %s finding:\n%s", a, out)
		}
	}

	if out, err := vet("sprinting/internal/mem"); err != nil {
		t.Errorf("go vet -vettool over a clean package failed: %v\n%s", err, out)
	}
}
