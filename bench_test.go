// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment driver at
// full calibrated scale; `go test -bench=. -benchmem` therefore reproduces
// the complete evaluation and reports how long each artifact takes to
// regenerate.
package sprinting_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"sprinting"
	"sprinting/internal/experiments"
)

// benchExperiment runs one driver per iteration, discarding the rendered
// tables (the numbers are recorded in EXPERIMENTS.md and asserted by the
// package tests). The engine's point cache is dropped each iteration so
// the benchmark measures regeneration, not cache lookups.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	d, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opt := experiments.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		tables, err := d.Run(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, tb := range tables {
			tb.Render(io.Discard)
		}
	}
}

// BenchmarkFig1 regenerates Figure 1 (power density / dark silicon trends).
func BenchmarkFig1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkTable1 regenerates Table 1 (kernel inventory).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig2 regenerates Figure 2 (three execution modes).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3 regenerates Figure 3 (thermal-equivalent circuit).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4a regenerates Figure 4(a) (sprint initiation transient).
func BenchmarkFig4a(b *testing.B) { benchExperiment(b, "fig4a") }

// BenchmarkFig4b regenerates Figure 4(b) (post-sprint cooldown).
func BenchmarkFig4b(b *testing.B) { benchExperiment(b, "fig4b") }

// BenchmarkFig5 regenerates Figure 5 (PDN netlist summary).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (supply voltage vs activation ramp).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkSec6 regenerates the §6 power-source feasibility tables.
func BenchmarkSec6(b *testing.B) { benchExperiment(b, "sec6") }

// BenchmarkFig7 regenerates Figure 7 (16-core speedup vs idealized DVFS).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (sobel speedup vs input size).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (speedup across input sizes).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (speedup vs core count).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11 (normalized dynamic energy).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkAblations regenerates the design-choice ablation tables
// (solid-vs-PCM sink, §7 exit paths, sleep discipline).
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkDesignSpace regenerates the sprint-width × PCM-mass extension
// study.
func BenchmarkDesignSpace(b *testing.B) { benchExperiment(b, "designspace") }

// BenchmarkSession regenerates the bursty-user-activity session study.
func BenchmarkSession(b *testing.B) { benchExperiment(b, "session") }

// benchEngineFigArchSweep measures the Figure 7 column set — every kernel
// under the sustained baseline and both sprint policies — evaluated as one
// engine grid at the given pool width. Points are independent full
// co-simulations, so throughput should scale near-linearly with workers
// up to the host's core count (workers=1 is the serial reference).
func benchEngineFigArchSweep(b *testing.B, workers int) {
	var points []sprinting.GridPoint
	for _, k := range sprinting.Kernels() {
		for _, policy := range []sprinting.Policy{
			sprinting.Sustained, sprinting.ParallelSprint, sprinting.DVFSSprint,
		} {
			points = append(points, sprinting.GridPoint{
				Kernel: k.Name,
				Size:   sprinting.SizeA,
				Shards: 64,
				Config: sprinting.DefaultConfig(policy),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.RunGrid(points, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineFigArchSweep reports the fig_arch sweep at increasing
// pool widths; compare ns/op across sub-benchmarks for the scaling curve.
func BenchmarkEngineFigArchSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) { benchEngineFigArchSweep(b, workers) })
	}
}

// BenchmarkFleetSweep measures the fleet study's shape at production
// scale: every dispatch policy over a 100-node fleet serving a 20k-request
// open-loop trace, evaluated as one engine sweep (one worker per policy).
func BenchmarkFleetSweep(b *testing.B) {
	var cfgs []sprinting.FleetConfig
	for _, p := range sprinting.FleetPolicies() {
		cfg := sprinting.DefaultFleetConfig(p)
		cfg.Nodes = 100
		cfg.Requests = 20000
		cfgs = append(cfgs, cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.SimulateFleetSweep(cfgs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetPolicyExperiment regenerates the fleet_policy experiment
// tables (policies × loads × fleet sizes).
func BenchmarkFleetPolicyExperiment(b *testing.B) { benchExperiment(b, "fleet_policy") }

// BenchmarkFleetScale is the warehouse-scale regime the dispatch index,
// value-based event heap, and streaming latency histogram exist for:
// 10,000 sprint-aware nodes under rack token-permit coordination serving
// one million requests. Run with -benchmem: steady state must not
// allocate per request (the B/op and allocs/op columns are dominated by
// the per-run arenas), and one op should stay in single-digit seconds
// where the pre-index implementation took minutes of O(N) dispatch scans.
func BenchmarkFleetScale(b *testing.B) {
	cfg := sprinting.DefaultFleetConfig(sprinting.FleetSprintAware)
	cfg.Nodes = 10000
	cfg.Requests = 1_000_000
	cfg.Coordination = sprinting.RackTokenPermit
	cfg.RackSize = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.SimulateFleet(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetScaleParallel is BenchmarkFleetScale with the event loop
// sharded eight ways. Sprint-aware dispatch couples the shards (every
// arrival takes a fleet-wide argmin), so this runs the serialized-merge
// engine — per-shard heaps and index segments replayed in exact global
// order on one goroutine — and measures the sharding machinery's
// overhead against the single-loop baseline, not a speedup. The
// concurrent engine's speedup is BenchmarkFleetScaleDecoupledParallel.
func BenchmarkFleetScaleParallel(b *testing.B) {
	cfg := sprinting.DefaultFleetConfig(sprinting.FleetSprintAware)
	cfg.Nodes = 10000
	cfg.Requests = 1_000_000
	cfg.Coordination = sprinting.RackTokenPermit
	cfg.RackSize = 16
	cfg.Workers = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.SimulateFleet(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetScaleDecoupled is the sequential baseline for the
// concurrent engine: round-robin dispatch (static assignment, so shards
// share no state) over the same 10k-node × 1M-request token-permit
// fleet, on the classic single loop.
func BenchmarkFleetScaleDecoupled(b *testing.B) {
	cfg := sprinting.DefaultFleetConfig(sprinting.FleetRoundRobin)
	cfg.Nodes = 10000
	cfg.Requests = 1_000_000
	cfg.Coordination = sprinting.RackTokenPermit
	cfg.RackSize = 16
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.SimulateFleet(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetScaleDecoupledParallel shards the decoupled run across
// eight concurrent per-worker event loops — real goroutine parallelism
// with byte-identical output. cmd/benchjson -compare reports the
// speedup over BenchmarkFleetScaleDecoupled and can gate on it (the
// gate arms only when GOMAXPROCS ≥ 4; a single-core runner measures
// nothing but scheduling overhead).
func BenchmarkFleetScaleDecoupledParallel(b *testing.B) {
	cfg := sprinting.DefaultFleetConfig(sprinting.FleetRoundRobin)
	cfg.Nodes = 10000
	cfg.Requests = 1_000_000
	cfg.Coordination = sprinting.RackTokenPermit
	cfg.RackSize = 16
	cfg.Workers = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.SimulateFleet(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetTrace measures the flight recorder's on-path cost: a
// sprint-aware token-permit fleet with full-level tracing, top-3
// counterfactual probes, and 5 s timeline windows. Tracing forces the
// serialized engine and buffers the whole recording in memory, so this
// is the price of observability — compare against BenchmarkFleetTraceOff
// to isolate it.
func BenchmarkFleetTrace(b *testing.B) {
	cfg := sprinting.DefaultFleetConfig(sprinting.FleetSprintAware)
	cfg.Nodes = 1000
	cfg.Requests = 100_000
	cfg.Coordination = sprinting.RackTokenPermit
	cfg.RackSize = 16
	cfg.Trace = sprinting.TraceConfig{Level: sprinting.TraceFull, TopK: 3, WindowS: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sprinting.SimulateFleetTraced(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetTraceOff is the paired control: the identical config
// through the plain entry point, which ignores FleetConfig.Trace
// entirely — the recorder hooks compile to nil checks. The delta to
// BenchmarkFleetTrace is the recorder's cost; the delta to a
// pre-recorder baseline of this benchmark is the zero-cost-when-off
// contract (the allocation half of which TestSimulateSteadyStateAllocations
// pins exactly).
func BenchmarkFleetTraceOff(b *testing.B) {
	cfg := sprinting.DefaultFleetConfig(sprinting.FleetSprintAware)
	cfg.Nodes = 1000
	cfg.Requests = 100_000
	cfg.Coordination = sprinting.RackTokenPermit
	cfg.RackSize = 16
	cfg.Trace = sprinting.TraceConfig{Level: sprinting.TraceFull, TopK: 3, WindowS: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.SimulateFleet(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetTenants measures the multi-tenant workload layer at
// scale: 16 tenant populations across four SLO classes (mixed arrival
// processes and work distributions, per-class admission buckets) under
// priority dequeue on a 100-node fleet — roughly 100k generated
// arrivals per iteration. The delta to a same-size single-population
// run is the workload layer's cost: spec-driven generation, admission,
// disciplined dequeue, and the per-class metric assembly.
func BenchmarkFleetTenants(b *testing.B) {
	cfg := sprinting.DefaultFleetConfig(sprinting.FleetSprintAware)
	cfg.Nodes = 100
	w := sprinting.FleetWorkload{
		Classes: []sprinting.WorkloadSLOClass{
			{Name: "gold", Priority: 0, TargetP99S: 1, AdmitRatePerS: 20, AdmitBurst: 40},
			{Name: "silver", Priority: 1, TargetP99S: 3},
			{Name: "bronze", Priority: 2},
			{Name: "batch", Priority: 5},
		},
		Discipline: "priority",
		DurationS:  2200,
	}
	classes := []string{"gold", "silver", "bronze", "batch"}
	processes := []sprinting.WorkloadArrival{
		{Process: "poisson", RatePerS: 2.8},
		{Process: "gamma", RatePerS: 2.8, Shape: 0.5},
		{Process: "weibull", RatePerS: 2.8, Shape: 2},
	}
	works := []sprinting.WorkloadWork{
		{Dist: "exp", MeanS: 2},
		{Dist: "lognormal", MeanS: 2, Sigma: 1},
		{Dist: "pareto", MeanS: 2, Alpha: 2.5},
		{Dist: "fixed", MeanS: 2},
	}
	for i := 0; i < 16; i++ {
		w.Tenants = append(w.Tenants, sprinting.WorkloadTenant{
			Name:    fmt.Sprintf("tenant%02d", i),
			Class:   classes[i%len(classes)],
			Arrival: processes[i%len(processes)],
			Work:    works[i%len(works)],
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.SimulateWorkload(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRackSweep measures the rack power-domain machinery at
// production scale: every coordination policy over a 96-node fleet in
// racks of 16 (each rack provisioned for one concurrent sprinter) serving
// a 20k-request overloaded trace, evaluated as one engine sweep.
func BenchmarkRackSweep(b *testing.B) {
	var cfgs []sprinting.FleetConfig
	for _, c := range sprinting.RackCoordinations() {
		cfg := sprinting.DefaultFleetConfig(sprinting.FleetSprintAware)
		cfg.Nodes = 96
		cfg.Requests = 20000
		cfg.ArrivalRatePerS = 1.2 * float64(cfg.Nodes) / cfg.MeanWorkS
		cfg.Coordination = c
		cfg.RackSize = 16
		cfg.RackPowerBudgetW = sprinting.RackBudgetW(16, 1, cfg.Node)
		cfgs = append(cfgs, cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.SimulateFleetSweep(cfgs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRackCoordinationExperiment regenerates the rack_coordination
// experiment tables (coordination × rack sizes × loads).
func BenchmarkRackCoordinationExperiment(b *testing.B) { benchExperiment(b, "rack_coordination") }

// BenchmarkFleetScenario measures the dynamic-fleet machinery at scale:
// a 1000-node fleet playing a flash-crowd scenario with ambient swings
// and failure churn — phase retargeting, churn failover, and per-phase
// accounting all on the hot path beside ordinary dispatch.
func BenchmarkFleetScenario(b *testing.B) {
	cfg := sprinting.DefaultFleetConfig(sprinting.FleetSprintAware)
	cfg.Nodes = 1000
	sc := sprinting.FleetScenario{
		BaseRatePerS: 0.9 * 1000 / 2,
		Phases: []sprinting.ScenarioPhase{
			{Name: "baseline", DurationS: 60, StartFactor: 0.7},
			{Name: "surge", DurationS: 40, StartFactor: 1.4, AmbientDeltaC: 10},
			{Name: "recovery", DurationS: 60, Shape: sprinting.ScenarioDecay, StartFactor: 1.4, EndFactor: 0.5},
		},
		Churn: sprinting.ScenarioChurn{MTBFS: 2, MeanDowntimeS: 5},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.SimulateScenario(sprinting.ScenarioConfig{Fleet: cfg, Scenario: sc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetScenarioHetero measures sprint-aware dispatch over a
// heterogeneous fleet — the configuration that once fell back to an
// O(N) whole-fleet rescan per arrival and now runs on per-class index
// segments. Run with -benchmem: the allocs/op column is the regression
// pin (steady state must not allocate per request, same contract as the
// homogeneous path).
func BenchmarkFleetScenarioHetero(b *testing.B) {
	cfg := sprinting.DefaultFleetConfig(sprinting.FleetSprintAware)
	cfg.Coordination = sprinting.RackTokenPermit
	cfg.RackSize = 16
	sc := sprinting.FleetScenario{
		BaseRatePerS: 0.9 * 1000 / 2,
		Phases: []sprinting.ScenarioPhase{
			{Name: "baseline", DurationS: 60, StartFactor: 0.7},
			{Name: "surge", DurationS: 40, StartFactor: 1.4},
			{Name: "recovery", DurationS: 60, Shape: sprinting.ScenarioDecay, StartFactor: 1.4, EndFactor: 0.5},
		},
		Classes: []sprinting.ScenarioNodeClass{
			{Name: "big", Count: 250, SprintWidth: 32, BudgetScale: 2, DrainScale: 2},
			{Name: "small", Count: 750},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.SimulateScenario(sprinting.ScenarioConfig{Fleet: cfg, Scenario: sc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetReliability measures the request-reliability layer at
// scale: a 1000-node fleet riding out a flash crowd with gray stragglers,
// correlated rack power loss, client timeouts, and budgeted retries — the
// timeout/retry/shed handlers, stale-copy checks, and token bucket all on
// the hot path beside ordinary dispatch.
func BenchmarkFleetReliability(b *testing.B) {
	cfg := sprinting.DefaultFleetConfig(sprinting.FleetLeastLoaded)
	cfg.Nodes = 1000
	cfg.Coordination = sprinting.RackTokenPermit
	cfg.RackSize = 16
	cfg.Reliability = sprinting.FleetReliability{
		TimeoutS:        5,
		MaxRetries:      3,
		RetryBackoffS:   0.1,
		RetryBudgetPerS: 0.1 * 0.9 * 1000 / 2,
		RetryBurst:      32,
		GrayFrac:        0.1,
		GraySlowdownX:   6,
		FaultProb:       0.01,
	}
	sc := sprinting.FleetScenario{
		BaseRatePerS: 0.9 * 1000 / 2,
		Phases: []sprinting.ScenarioPhase{
			{Name: "baseline", DurationS: 60, StartFactor: 0.7},
			{Name: "surge", DurationS: 40, StartFactor: 1.4},
			{Name: "recovery", DurationS: 60, Shape: sprinting.ScenarioDecay, StartFactor: 1.4, EndFactor: 0.5},
		},
		Churn: sprinting.ScenarioChurn{MTBFS: 2, MeanDowntimeS: 5, RackMTBFS: 40, RackMeanDowntimeS: 5},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.SimulateScenario(sprinting.ScenarioConfig{Fleet: cfg, Scenario: sc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSprintRunSobel16 measures one full co-simulated 16-core sprint
// (machine + thermal + runtime) on the default sobel input.
func BenchmarkSprintRunSobel16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.RunKernel("sobel", sprinting.SizeB,
			sprinting.DefaultConfig(sprinting.ParallelSprint)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThermalStep measures the raw thermal-network step rate that the
// co-simulation pays every 1000 simulated cycles.
func BenchmarkThermalStep(b *testing.B) {
	stack := sprinting.DefaultThermalDesign().Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stack.Step(1e-6, 16)
	}
}

// BenchmarkActivationTransient measures one full Figure 6 PDN transient
// (abrupt schedule).
func BenchmarkActivationTransient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sprinting.SimulateActivation(0); err != nil {
			b.Fatal(err)
		}
	}
}
