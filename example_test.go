package sprinting_test

import (
	"fmt"

	"sprinting"
)

// Example demonstrates the headline result: a parallel sprint completes a
// vision burst an order of magnitude faster than sustained operation at
// near-parity energy.
func Example() {
	base, err := sprinting.RunKernel("sobel", sprinting.SizeA,
		sprinting.DefaultConfig(sprinting.Sustained))
	if err != nil {
		panic(err)
	}
	sprint, err := sprinting.RunKernel("sobel", sprinting.SizeA,
		sprinting.DefaultConfig(sprinting.ParallelSprint))
	if err != nil {
		panic(err)
	}
	fmt.Println("order of magnitude faster:", sprint.Speedup(base) > 8)
	fmt.Println("energy within 25% of sequential:", sprint.NormalizedEnergy(base) < 1.25)
	fmt.Println("completed within the sprint budget:", !sprint.SprintExhausted)
	// Output:
	// order of magnitude faster: true
	// energy within 25% of sequential: true
	// completed within the sprint budget: true
}

// ExampleRunGrid evaluates a batch of simulation points on the concurrent
// engine: the full policy comparison for one kernel as a single grid.
// Results come back in point order whatever the pool width, and any
// worker count — including the exactly serial 1 — yields identical values.
func ExampleRunGrid() {
	points := []sprinting.GridPoint{
		{Kernel: "sobel", Size: sprinting.SizeA, Shards: 64,
			Config: sprinting.DefaultConfig(sprinting.Sustained)},
		{Kernel: "sobel", Size: sprinting.SizeA, Shards: 64,
			Config: sprinting.DefaultConfig(sprinting.ParallelSprint)},
		{Kernel: "sobel", Size: sprinting.SizeA, Shards: 64,
			Config: sprinting.DefaultConfig(sprinting.DVFSSprint)},
	}
	parallel, err := sprinting.RunGrid(points, 0) // 0 = GOMAXPROCS workers
	if err != nil {
		panic(err)
	}
	serial, err := sprinting.RunGrid(points, 1)
	if err != nil {
		panic(err)
	}
	base := parallel[0]
	fmt.Println("parallel sprint an order of magnitude faster:", parallel[1].Speedup(base) > 8)
	fmt.Println("dvfs sprint caps near cube-root boost:", parallel[2].Speedup(base) < 3)
	identical := true
	for i := range points {
		identical = identical &&
			serial[i].ElapsedS == parallel[i].ElapsedS &&
			serial[i].EnergyJ == parallel[i].EnergyJ
	}
	fmt.Println("serial run identical:", identical)
	// Output:
	// parallel sprint an order of magnitude faster: true
	// dvfs sprint caps near cube-root boost: true
	// serial run identical: true
}

// ExampleSimulateActivation reproduces the §5 conclusion: abrupt activation
// of 16 cores is electrically unsafe, a 128 µs ramp is fine.
func ExampleSimulateActivation() {
	abrupt, err := sprinting.SimulateActivation(0)
	if err != nil {
		panic(err)
	}
	slow, err := sprinting.SimulateActivation(128e-6)
	if err != nil {
		panic(err)
	}
	fmt.Println("abrupt within tolerance:", abrupt.WithinTolerance)
	fmt.Println("128us ramp within tolerance:", slow.WithinTolerance)
	// Output:
	// abrupt within tolerance: false
	// 128us ramp within tolerance: true
}

// ExampleNewGovernor shows the §7 budget manager pacing repeated sprints.
func ExampleNewGovernor() {
	g := sprinting.NewGovernor()
	fmt.Println("fresh budget allows 16W x 1s:", g.CanSprint(16, 1))
	g.RecordSprint(16, 1)
	fmt.Println("immediately again:", g.CanSprint(16, 1))
	g.Idle(g.TimeToFullS())
	fmt.Println("after cooling:", g.CanSprint(16, 1))
	// Output:
	// fresh budget allows 16W x 1s: true
	// immediately again: false
	// after cooling: true
}

// ExampleSimulateSprintThermals reproduces the Figure 4(a) thermal shape:
// the PCM pins the junction near its melting point for about a second.
func ExampleSimulateSprintThermals() {
	res := sprinting.SimulateSprintThermals(sprinting.DefaultThermalDesign(), 16)
	fmt.Println("plateau lasts most of a second:", res.PlateauS > 0.8 && res.PlateauS < 1.2)
	fmt.Println("sprint a little over a second:", res.SprintEndS > 1.0 && res.SprintEndS < 1.6)
	// Output:
	// plateau lasts most of a second: true
	// sprint a little over a second: true
}

// ExampleSimulateFleet runs the datacenter fleet simulation: dispatch
// policies over governor-managed sprint-capable nodes near saturation,
// where routing on thermal headroom holds the latency tail down.
func ExampleSimulateFleet() {
	load := func(p sprinting.FleetPolicy) sprinting.FleetConfig {
		cfg := sprinting.DefaultFleetConfig(p)
		cfg.Nodes = 8
		cfg.Requests = 4000
		cfg.Seed = 1
		cfg.ArrivalRatePerS = 0.95 * float64(cfg.Nodes) / cfg.MeanWorkS
		return cfg
	}
	rr, err := sprinting.SimulateFleet(load(sprinting.FleetRoundRobin))
	if err != nil {
		panic(err)
	}
	sa, err := sprinting.SimulateFleet(load(sprinting.FleetSprintAware))
	if err != nil {
		panic(err)
	}
	fmt.Println("every request served:", sa.Completed == 4000 && sa.Dropped == 0)
	fmt.Println("sprint-aware beats round-robin p99:", sa.P99S < rr.P99S)
	fmt.Println("thermal-headroom routing denies no sprints:", sa.SprintDenialRate == 0)
	// Output:
	// every request served: true
	// sprint-aware beats round-robin p99: true
	// thermal-headroom routing denies no sprints: true
}

// ExampleSimulateScenario_trace attaches the flight recorder to a flash
// crowd: the trace carries every dispatch decision with its winning key
// and rejected alternatives, phase-annotated timeline samples, and —
// because each alternative is probed against the node's actual future —
// the counterfactual regret of every completed decision.
func ExampleSimulateScenario_trace() {
	cfg := sprinting.DefaultFleetConfig(sprinting.FleetSprintAware)
	cfg.Nodes = 8
	cfg.Seed = 1
	cfg.Trace = sprinting.TraceConfig{Level: sprinting.TraceDecisions, TopK: 3, WindowS: 10}
	sc := sprinting.ScenarioConfig{
		Fleet: cfg,
		Scenario: sprinting.FleetScenario{
			BaseRatePerS: 0.9 * float64(cfg.Nodes) / cfg.MeanWorkS,
			Phases: []sprinting.ScenarioPhase{
				{Name: "baseline", DurationS: 40, StartFactor: 0.7},
				{Name: "surge", DurationS: 30, StartFactor: 3},
			},
		},
	}
	m, tr, err := sprinting.SimulateScenarioTraced(sc)
	if err != nil {
		panic(err)
	}
	plain, err := sprinting.SimulateScenario(sc)
	if err != nil {
		panic(err)
	}
	fmt.Println("recorder observes, never steers:",
		m.Completed == plain.Completed && m.P99S == plain.P99S)
	fmt.Println("every arrival's dispatch recorded:", len(tr.Decisions()) >= m.Requests)
	fmt.Println("surge annotated on the timeline:", len(tr.Events("phase-start")) == 1)
	top := tr.TopRegret(1)
	fmt.Println("worst regret measured against the alternative's real future:",
		len(top) == 1 && top[0].RegretS > 0)
	// Output:
	// recorder observes, never steers: true
	// every arrival's dispatch recorded: true
	// surge annotated on the timeline: true
	// worst regret measured against the alternative's real future: true
}

// ExampleEvaluateSession compares service policies on a bursty trace.
func ExampleEvaluateSession() {
	bursts := sprinting.GenerateSession(10, 30, 2, 42)
	sustained := sprinting.EvaluateSession(bursts, sprinting.SessionSustained)
	governed := sprinting.EvaluateSession(bursts, sprinting.SessionGoverned)
	fmt.Println("sprinting much more responsive:",
		governed.MeanResponseS < sustained.MeanResponseS/8)
	fmt.Println("zero thermal violations:", governed.ViolationJ == 0)
	// Output:
	// sprinting much more responsive: true
	// zero thermal violations: true
}
