package sprinting_test

import (
	"bytes"
	"strings"
	"testing"

	"sprinting"
)

func TestPublicQuickRun(t *testing.T) {
	base, err := sprinting.RunKernel("sobel", sprinting.SizeA, sprinting.DefaultConfig(sprinting.Sustained))
	if err != nil {
		t.Fatal(err)
	}
	spr, err := sprinting.RunKernel("sobel", sprinting.SizeA, sprinting.DefaultConfig(sprinting.ParallelSprint))
	if err != nil {
		t.Fatal(err)
	}
	if sp := spr.Speedup(base); sp < 5 {
		t.Errorf("public API sprint speedup = %.1f, want substantial", sp)
	}
}

func TestPublicKernelRegistry(t *testing.T) {
	if got := len(sprinting.Kernels()); got != 6 {
		t.Errorf("Kernels() = %d entries, want 6", got)
	}
	if _, err := sprinting.RunKernel("nope", sprinting.SizeA, sprinting.DefaultConfig(sprinting.Sustained)); err == nil {
		t.Error("unknown kernel should error")
	}
}

func TestPublicThermals(t *testing.T) {
	d := sprinting.DefaultThermalDesign()
	res := sprinting.SimulateSprintThermals(d, 16)
	if res.SprintEndS < 1.0 || res.SprintEndS > 1.6 {
		t.Errorf("sprint duration = %.2f s, want a little over 1 s", res.SprintEndS)
	}
	cool := sprinting.SimulateCooldownThermals(d, 16)
	if !cool.NearOK {
		t.Error("cooldown should reach near-ambient")
	}
}

func TestPublicActivation(t *testing.T) {
	abrupt, err := sprinting.SimulateActivation(0)
	if err != nil {
		t.Fatal(err)
	}
	if abrupt.WithinTolerance {
		t.Error("abrupt activation should fail tolerance")
	}
	slow, err := sprinting.SimulateActivation(128e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !slow.WithinTolerance {
		t.Error("128 µs ramp should pass tolerance")
	}
}

func TestPublicPowerSupply(t *testing.T) {
	s := sprinting.DefaultPowerSupply()
	r := s.Evaluate(sprinting.SprintDemand{PowerW: 16, DurationS: 1, RailV: 1})
	if !r.Feasible {
		t.Errorf("16 W × 1 s should be feasible: %s", r.Reason)
	}
}

func TestPublicExperimentList(t *testing.T) {
	ids := sprinting.ExperimentIDs()
	if len(ids) < 13 {
		t.Errorf("experiment registry too small: %v", ids)
	}
	var buf bytes.Buffer
	if err := sprinting.RunExperiment(&buf, "table1", 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sobel") {
		t.Error("table1 output missing kernels")
	}
	if err := sprinting.RunExperiment(&buf, "figX", 1); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestPublicExperimentCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sprinting.RunExperimentCSV(&buf, "table1", 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "kernel,description") {
		t.Errorf("CSV output missing header: %q", out)
	}
}

func TestPublicLimitedConfig(t *testing.T) {
	full := sprinting.DefaultConfig(sprinting.ParallelSprint)
	lim := sprinting.LimitedConfig(sprinting.ParallelSprint)
	if lim.Thermal.PCMMassG >= full.Thermal.PCMMassG {
		t.Error("limited config should carry 100× less PCM")
	}
	if ratio := full.Thermal.PCMMassG / lim.Thermal.PCMMassG; ratio < 99 || ratio > 101 {
		t.Errorf("PCM mass ratio = %.1f, want 100 (the paper's §8.3 design point)", ratio)
	}
}

func TestPublicGovernor(t *testing.T) {
	g := sprinting.NewGovernor()
	if !g.CanSprint(16, 1) {
		t.Error("fresh governor should allow the design-point sprint")
	}
	g.RecordSprint(16, 1)
	if g.TimeToFullS() <= 0 {
		t.Error("after a sprint the budget needs time to refill")
	}
}

func TestPublicFleet(t *testing.T) {
	cfg := sprinting.DefaultFleetConfig(sprinting.FleetSprintAware)
	cfg.Nodes = 4
	cfg.Requests = 300
	m, err := sprinting.SimulateFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != cfg.Requests || m.P99S <= 0 || m.TotalEnergyJ <= 0 {
		t.Errorf("degenerate fleet metrics: %+v", m)
	}
}

func TestPublicFleetSweepDeterministic(t *testing.T) {
	var cfgs []sprinting.FleetConfig
	for _, p := range sprinting.FleetPolicies() {
		cfg := sprinting.DefaultFleetConfig(p)
		cfg.Nodes = 8
		cfg.Requests = 800
		cfgs = append(cfgs, cfg)
	}
	serial, err := sprinting.SimulateFleetSweep(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := sprinting.SimulateFleetSweep(cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].P99S != wide[i].P99S || serial[i].TotalEnergyJ != wide[i].TotalEnergyJ {
			t.Errorf("policy %s: workers=1 and workers=4 metrics differ", cfgs[i].Policy)
		}
	}
	if _, err := sprinting.ParseFleetPolicy("sprint-aware"); err != nil {
		t.Errorf("ParseFleetPolicy: %v", err)
	}
}
