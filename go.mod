module sprinting

go 1.24
