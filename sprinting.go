// Package sprinting is a full reproduction of "Computational Sprinting"
// (Raghavan, Luo, Chandawalla, Papaefthymiou, Pipe, Wenisch, Martin — HPCA
// 2012) as a Go library: a many-core architectural simulator, an RC/PCM
// thermal model, an RLC power-delivery simulator, battery/ultracapacitor
// models, the sprint runtime, and the six vision kernels of the paper's
// evaluation, together with drivers that regenerate every table and figure.
//
// The central idea: a mobile chip that can sustain only ~1 W activates up
// to 16 dark-silicon cores for sub-second bursts — exceeding its thermal
// design power by an order of magnitude — buffering the heat in the latent
// capacity of a phase-change material, then cools back down. This facade
// exposes the library's primary operations; see the examples directory for
// runnable scenarios, and cmd/sprintbench to regenerate the paper's
// evaluation.
//
// Every experiment sweep executes through the internal/engine worker pool,
// so regeneration is parallel by default. Point evaluations are
// deterministic, so any worker count — including 1, which is exactly
// serial — produces identical tables; see RunOptions.Workers and RunGrid
// for batch simulation from client code. Batch APIs also come in
// ...Context variants that honor caller cancellation.
//
// Beyond the paper's single-chip evaluation, SimulateFleet scales the
// ingredients to a datacenter: a deterministic discrete-event simulation
// of N sprint-capable nodes — each owning a governor-managed thermal
// budget and a bounded queue — serving open-loop traffic under
// round-robin, least-loaded, sprint-aware, or hedged dispatch. Rack power
// domains add the shared-circuit dimension: racks of nodes draw from one
// provisioned budget backed by a §6 ultracapacitor buffer, arbitrated by
// uncoordinated, token-permit, or probabilistic sprint coordination; see
// cmd/fleetsim and the fleet_policy and rack_coordination experiments.
//
// SimulateScenario makes the fleet dynamic — the regime where sprinting
// actually earns its keep: declarative load phases (flash-crowd steps,
// diurnal sines, decaying ramps), ambient-temperature swings that
// retarget every governor, heterogeneous node classes, and seeded node
// failure/recovery churn, reported per phase. See FleetScenario and the
// fleet_scenarios experiment.
package sprinting

import (
	"context"
	"fmt"
	"io"

	"sprinting/internal/core"
	"sprinting/internal/engine"
	"sprinting/internal/experiments"
	"sprinting/internal/fleet"
	"sprinting/internal/governor"
	"sprinting/internal/powergrid"
	"sprinting/internal/powersource"
	"sprinting/internal/session"
	"sprinting/internal/table"
	"sprinting/internal/thermal"
	"sprinting/internal/trace"
	"sprinting/internal/workloads"
)

// Policy selects the execution mode of a run.
type Policy = core.Policy

// Execution policies.
const (
	// Sustained runs one ≈1 W core — the non-sprinting baseline.
	Sustained = core.Sustained
	// ParallelSprint activates the sprint cores until the thermal budget
	// is exhausted (the paper's headline mechanism).
	ParallelSprint = core.ParallelSprint
	// DVFSSprint boosts one core to ∛16 ≈ 2.5× frequency at 16× power
	// (the paper's §8.4 comparison).
	DVFSSprint = core.DVFSSprint
)

// Config parameterizes a sprint-system run; see DefaultConfig.
type Config = core.Config

// Result is the outcome of one run.
type Result = core.Result

// DefaultConfig returns the paper's 16-core, 150 mg-PCM smartphone design
// point for the given policy.
func DefaultConfig(policy Policy) Config { return core.DefaultConfig(policy) }

// LimitedConfig returns the §8.3 thermally constrained design point
// (1.5 mg of PCM, 100× less) for the given policy.
func LimitedConfig(policy Policy) Config {
	cfg := core.DefaultConfig(policy)
	cfg.Thermal = thermal.LimitedStackConfig()
	return cfg
}

// SizeClass selects a kernel input size (A smallest … D largest).
type SizeClass = workloads.SizeClass

// Input sizes.
const (
	SizeA = workloads.SizeA
	SizeB = workloads.SizeB
	SizeC = workloads.SizeC
	SizeD = workloads.SizeD
)

// Kernel describes one Table 1 workload.
type Kernel = workloads.Kernel

// Kernels returns the paper's six evaluation kernels.
func Kernels() []Kernel { return workloads.All() }

// RunKernel builds the named kernel at the given size and executes it under
// cfg, returning the run result. Each call builds fresh inputs, so results
// are reproducible and independent.
func RunKernel(kernel string, size SizeClass, cfg Config) (Result, error) {
	k, err := workloads.ByName(kernel)
	if err != nil {
		return Result{}, err
	}
	inst := k.Build(workloads.Params{Size: size, Shards: 64})
	res, err := core.Run(inst.Program, cfg)
	if err != nil {
		return Result{}, err
	}
	if verr := inst.Verify(); verr != nil {
		return res, fmt.Errorf("sprinting: kernel output verification failed: %w", verr)
	}
	return res, nil
}

// ThermalDesign is the Figure 3 stack configuration.
type ThermalDesign = thermal.StackConfig

// DefaultThermalDesign returns the 150 mg PCM design; its melting point,
// mass, and resistances can be adjusted for design-space exploration.
func DefaultThermalDesign() ThermalDesign { return thermal.DefaultStackConfig() }

// SprintTransient is the Figure 4(a) result type.
type SprintTransient = thermal.SprintTransient

// SimulateSprintThermals runs a constant-power sprint on the given design
// from cold until the junction reaches TJmax (Figure 4a).
func SimulateSprintThermals(d ThermalDesign, powerW float64) SprintTransient {
	return thermal.SimulateSprint(d, powerW, 1e-4, 10)
}

// CooldownTransient is the Figure 4(b) result type.
type CooldownTransient = thermal.CooldownTransient

// SimulateCooldownThermals runs a sprint followed by idle cooling
// (Figure 4b), with times measured from the start of cooldown.
func SimulateCooldownThermals(d ThermalDesign, powerW float64) CooldownTransient {
	return thermal.SimulateCooldown(d, powerW, 0, 1e-3, 5, 200, 3)
}

// ActivationResult is the Figure 6 supply-integrity result.
type ActivationResult = powergrid.Result

// SimulateActivation runs the §5 power-distribution transient for a linear
// core-activation ramp of the given duration (0 = abrupt) and reports
// supply integrity against the 2% tolerance.
func SimulateActivation(rampS float64) (*ActivationResult, error) {
	cfg := powergrid.DefaultConfig()
	var sched powergrid.Schedule
	if rampS <= 0 {
		sched = powergrid.Abrupt(2e-6)
	} else {
		sched = powergrid.LinearRamp(2e-6, rampS)
	}
	return powergrid.Simulate(cfg, sched, powergrid.DefaultSimOptions(sched))
}

// SimulateActivations runs SimulateActivation for every ramp concurrently
// on a bounded worker pool (workers <= 0 selects GOMAXPROCS, 1 is exactly
// serial), returning results in ramp order.
func SimulateActivations(rampsS []float64, workers int) ([]*ActivationResult, error) {
	return SimulateActivationsContext(context.Background(), rampsS, workers)
}

// SimulateActivationsContext is SimulateActivations under a caller
// context: cancellation stops new ramps from starting, and finished ramps
// keep their results.
func SimulateActivationsContext(ctx context.Context, rampsS []float64, workers int) ([]*ActivationResult, error) {
	return engine.Map(ctx, rampsS,
		func(_ context.Context, rampS float64) (*ActivationResult, error) {
			return SimulateActivation(rampS)
		}, engine.Options{Workers: workers})
}

// SimulateSprintThermalsBatch runs SimulateSprintThermals for every sprint
// power concurrently on a bounded worker pool, returning transients in
// power order. The error reports any simulation panic the pool isolated.
func SimulateSprintThermalsBatch(d ThermalDesign, powersW []float64, workers int) ([]SprintTransient, error) {
	return SimulateSprintThermalsBatchContext(context.Background(), d, powersW, workers)
}

// SimulateSprintThermalsBatchContext is SimulateSprintThermalsBatch under
// a caller context.
func SimulateSprintThermalsBatchContext(ctx context.Context, d ThermalDesign, powersW []float64, workers int) ([]SprintTransient, error) {
	return engine.Map(ctx, powersW,
		func(_ context.Context, p float64) (SprintTransient, error) {
			return SimulateSprintThermals(d, p), nil
		}, engine.Options{Workers: workers})
}

// SimulateCooldownThermalsBatch runs SimulateCooldownThermals for every
// sprint power concurrently on a bounded worker pool, returning transients
// in power order. The error reports any simulation panic the pool
// isolated.
func SimulateCooldownThermalsBatch(d ThermalDesign, powersW []float64, workers int) ([]CooldownTransient, error) {
	return SimulateCooldownThermalsBatchContext(context.Background(), d, powersW, workers)
}

// SimulateCooldownThermalsBatchContext is SimulateCooldownThermalsBatch
// under a caller context.
func SimulateCooldownThermalsBatchContext(ctx context.Context, d ThermalDesign, powersW []float64, workers int) ([]CooldownTransient, error) {
	return engine.Map(ctx, powersW,
		func(_ context.Context, p float64) (CooldownTransient, error) {
			return SimulateCooldownThermals(d, p), nil
		}, engine.Options{Workers: workers})
}

// PowerSupply is the §6 hybrid battery + ultracapacitor model.
type PowerSupply = powersource.HybridSupply

// DefaultPowerSupply returns the paper's phone Li-Ion + 25 F ultracapacitor
// configuration.
func DefaultPowerSupply() PowerSupply { return powersource.NewHybridSupply() }

// SprintDemand describes a burst the power supply must deliver.
type SprintDemand = powersource.SprintDemand

// Governor is the §7 activity-based sprint-budget manager: it answers
// "can I sprint now, at what intensity, and how long must I wait?" for
// repeated bursts.
type Governor = governor.Governor

// GovernorConfig parameterizes a Governor.
type GovernorConfig = governor.Config

// NewGovernor returns a budget manager for the paper's 16 W / 1 W platform.
func NewGovernor() *Governor { return governor.New(governor.DefaultConfig()) }

// Burst is one user-triggered computation demand in a session trace.
type Burst = session.Burst

// SessionPolicy selects how a session's bursts are serviced.
type SessionPolicy = session.Policy

// Session policies.
const (
	// SessionSustained serves bursts on the single sustainable core.
	SessionSustained = session.SustainedPolicy
	// SessionGoverned sprints within the §7 budget (never violates).
	SessionGoverned = session.GovernedSprint
	// SessionUnmanaged always sprints, ignoring the budget (straw man).
	SessionUnmanaged = session.UnmanagedSprint
)

// SessionMetrics summarizes the user-visible outcome of a session.
type SessionMetrics = session.Metrics

// GenerateSession produces a deterministic burst-arrival trace: n bursts
// with mean inter-arrival gap and mean single-core work, both in seconds.
func GenerateSession(n int, meanGapS, meanWorkS float64, seed int64) []Burst {
	return session.GenerateBursts(n, meanGapS, meanWorkS, seed)
}

// EvaluateSession services a burst trace under the policy on the paper's
// 16-core platform and returns the response-time metrics.
func EvaluateSession(bursts []Burst, policy SessionPolicy) SessionMetrics {
	return session.Evaluate(bursts, policy, session.DefaultConfig())
}

// EvaluateSessions services the burst trace under every policy
// concurrently on a bounded worker pool (workers <= 0 selects GOMAXPROCS,
// 1 is exactly serial), returning metrics in policy order. The error
// reports any evaluation panic the pool isolated.
func EvaluateSessions(bursts []Burst, policies []SessionPolicy, workers int) ([]SessionMetrics, error) {
	return EvaluateSessionsContext(context.Background(), bursts, policies, workers)
}

// EvaluateSessionsContext is EvaluateSessions under a caller context.
func EvaluateSessionsContext(ctx context.Context, bursts []Burst, policies []SessionPolicy, workers int) ([]SessionMetrics, error) {
	return engine.Map(ctx, policies,
		func(_ context.Context, p SessionPolicy) (SessionMetrics, error) {
			return EvaluateSession(bursts, p), nil
		}, engine.Options{Workers: workers})
}

// FleetPolicy selects how a simulated datacenter fleet dispatches
// requests to its sprint-capable nodes.
type FleetPolicy = fleet.Policy

// Fleet dispatch policies.
const (
	// FleetRoundRobin cycles through nodes blind to node state.
	FleetRoundRobin = fleet.RoundRobin
	// FleetLeastLoaded routes to the node with the least outstanding work.
	FleetLeastLoaded = fleet.LeastLoaded
	// FleetSprintAware routes to the node whose thermal headroom finishes
	// the request soonest.
	FleetSprintAware = fleet.SprintAware
	// FleetHedged duplicates laggard requests to a second node; the first
	// reply wins (competitive-parallel scheduling).
	FleetHedged = fleet.Hedged
)

// FleetPolicies returns every fleet dispatch policy.
func FleetPolicies() []FleetPolicy { return fleet.Policies() }

// ParseFleetPolicy maps a policy name (round-robin, least-loaded,
// sprint-aware, hedged) to its FleetPolicy.
func ParseFleetPolicy(s string) (FleetPolicy, error) { return fleet.ParsePolicy(s) }

// RackCoordination selects how nodes in a rack arbitrate their shared
// provisioned power budget before sprinting; the zero value
// RackNoCoordination disables rack power domains entirely.
type RackCoordination = fleet.Coordination

// Rack coordination policies.
const (
	// RackNoCoordination disables rack power domains (every node sprints
	// on its own thermal budget, as if its circuit were unlimited).
	RackNoCoordination = fleet.NoCoordination
	// RackUncoordinated lets every node sprint at will; concurrent
	// sprints beyond the provisioned budget drain the rack's ultracap
	// buffer and trip the branch breaker, forcing the whole rack to
	// nominal for a recovery window.
	RackUncoordinated = fleet.Uncoordinated
	// RackTokenPermit grants at most SprintPermits concurrent sprints per
	// rack — breaker trips are impossible by construction.
	RackTokenPermit = fleet.TokenPermit
	// RackProbabilistic admits each sprint with a headroom-proportional
	// probability from the deterministic seeded stream.
	RackProbabilistic = fleet.Probabilistic
)

// RackCoordinations returns the active coordination policies.
func RackCoordinations() []RackCoordination { return fleet.Coordinations() }

// ParseRackCoordination maps a coordination name (none, uncoordinated,
// token-permit, probabilistic) to its RackCoordination.
func ParseRackCoordination(s string) (RackCoordination, error) { return fleet.ParseCoordination(s) }

// RackStats summarizes one rack power domain: breaker trips, throttled
// recovery time, permit traffic, and member energy.
type RackStats = fleet.RackStats

// RackBudgetW provisions a branch circuit for rackSize nodes at nominal
// draw plus full sprint headroom for `sprinters` concurrent sprints.
func RackBudgetW(rackSize, sprinters int, node GovernorConfig) float64 {
	return fleet.RackBudgetW(rackSize, sprinters, node)
}

// DefaultRackBudgetW provisions a rack's branch circuit: nominal draw for
// every node plus full sprint headroom for a quarter of them.
func DefaultRackBudgetW(rackSize int, node GovernorConfig) float64 {
	return fleet.DefaultRackBudgetW(rackSize, node)
}

// FleetConfig parameterizes a fleet simulation: node count, dispatch
// policy, open-loop arrival trace, per-node queue bound, the governor
// configuration every node manages its thermal budget with, and the rack
// power domains (RackSize nodes per provisioned circuit under a
// RackCoordination policy).
//
// Traces up to 131072 requests report exact nearest-rank latency
// quantiles; larger traces stream latencies through a fixed-bin
// log-scale histogram (quantiles within 1.81%, mean and max still
// exact) so warehouse-scale runs stay allocation-free — set
// ExactQuantiles to opt back into exact buffering at any scale.
// FleetMetrics.ApproxQuantiles reports which mode ran.
//
// Workers shards the simulation's event loop across per-worker loops
// with racks as the shard boundary. The result is byte-identical at
// every worker count: decoupled configurations (round-robin dispatch
// without the probabilistic admission draw, outside scenario mode) run
// the shards concurrently on real goroutines, and coupled ones replay
// the exact global event order through a deterministic K-way merge.
type FleetConfig = fleet.Config

// FleetMetrics is the outcome of a fleet simulation: throughput, latency
// percentiles up to p999 (nearest-rank, or within one histogram bin when
// ApproxQuantiles is set — see FleetConfig), sprint-denial rate, per-node
// energy, and — with rack coordination enabled — breaker trips, throttled
// seconds, permit-denial rate, and per-rack energy.
type FleetMetrics = fleet.Metrics

// DefaultFleetConfig returns a 16-node fleet of the paper's 16 W / 1 W
// platforms under the given dispatch policy, offered ≈85% of sustained
// capacity.
func DefaultFleetConfig(p FleetPolicy) FleetConfig { return fleet.DefaultConfig(p) }

// SimulateFleet runs the discrete-event fleet simulation: N sprint-capable
// nodes — each owning a governor-managed thermal budget and a bounded FIFO
// queue — serve an open-loop request stream under the configured dispatch
// policy. The result is a pure function of the configuration.
//
// The simulator is built for warehouse scale: dispatch is O(log N) per
// arrival over an incrementally maintained index (segmented per node
// class, so heterogeneous fleets keep the bound), the event loop does
// not allocate per request, and a 10,000-node fleet serves a million
// requests in single-digit seconds (see BenchmarkFleetScale). Setting
// FleetConfig.Workers shards the loop itself — byte-identically at any
// worker count (see BenchmarkFleetScaleDecoupledParallel).
func SimulateFleet(cfg FleetConfig) (FleetMetrics, error) {
	return SimulateFleetContext(context.Background(), cfg)
}

// SimulateFleetContext is SimulateFleet under a caller context; very large
// traces can be cancelled mid-simulation.
func SimulateFleetContext(ctx context.Context, cfg FleetConfig) (FleetMetrics, error) {
	return fleet.Simulate(ctx, cfg)
}

// SimulateFleetSweep evaluates every fleet configuration concurrently on a
// bounded worker pool (workers <= 0 selects GOMAXPROCS, 1 is exactly
// serial), returning metrics in configuration order. Simulations are
// deterministic, so every worker count produces identical metrics.
func SimulateFleetSweep(cfgs []FleetConfig, workers int) ([]FleetMetrics, error) {
	return SimulateFleetSweepContext(context.Background(), cfgs, workers)
}

// SimulateFleetSweepContext is SimulateFleetSweep under a caller context.
func SimulateFleetSweepContext(ctx context.Context, cfgs []FleetConfig, workers int) ([]FleetMetrics, error) {
	return engine.Map(ctx, cfgs,
		func(ctx context.Context, cfg FleetConfig) (FleetMetrics, error) {
			return fleet.Simulate(ctx, cfg)
		}, engine.Options{Workers: workers})
}

// FleetScenario is a declarative dynamic-fleet description: load phases
// with ramps (flat, linear, diurnal sine, exponential decay) against the
// scenario's base rate, per-phase ambient-temperature shifts that
// retarget every node's governor, heterogeneous node classes, and seeded
// node failure/recovery churn. See ScenarioPhase, ScenarioNodeClass, and
// ScenarioChurn; the type unmarshals directly from JSON (the format
// cmd/fleetsim -scenario loads).
type FleetScenario = fleet.Scenario

// ScenarioPhase is one segment of a scenario timeline.
type ScenarioPhase = fleet.Phase

// ScenarioNodeClass declares one hardware class of a heterogeneous fleet.
type ScenarioNodeClass = fleet.NodeClass

// ScenarioChurn parameterizes seeded node failure/recovery, including
// correlated rack-level power loss.
type ScenarioChurn = fleet.Churn

// FleetReliability parameterizes the request-reliability layer:
// client-side timeouts with budgeted exponential-backoff retries, and
// fault injection — gray stragglers and transient per-service faults
// (correlated rack failures live in ScenarioChurn). The zero value
// disables the layer entirely at zero cost. Set on
// FleetConfig.Reliability.
type FleetReliability = fleet.Reliability

// ScenarioLoadShape selects a phase's arrival-rate profile.
type ScenarioLoadShape = fleet.LoadShape

// Scenario load shapes.
const (
	// ScenarioFlat holds the phase's start factor throughout.
	ScenarioFlat = fleet.ShapeFlat
	// ScenarioRamp moves linearly between the start and end factors.
	ScenarioRamp = fleet.ShapeRamp
	// ScenarioSine oscillates between the factors (diurnal load).
	ScenarioSine = fleet.ShapeSine
	// ScenarioDecay moves exponentially between the factors (the tail of
	// a flash crowd).
	ScenarioDecay = fleet.ShapeDecay
)

// PhaseMetrics is one phase's slice of a scenario outcome: its offered /
// completed / dropped counts, latency distribution, failover and breaker
// activity, attributed to the phase each request arrived in.
type PhaseMetrics = fleet.PhaseMetrics

// ScenarioConfig pairs a base fleet configuration with the scenario
// dynamics played over it. The base Config supplies the hardware and
// dispatch/coordination policies; the scenario supersedes Requests and
// ArrivalRatePerS (and Nodes, when classes are declared).
type ScenarioConfig struct {
	Fleet    FleetConfig
	Scenario FleetScenario
}

// SimulateScenario runs the dynamic fleet simulation: the scenario's
// phases shape the arrival rate and thermal environment over time while
// churn fails and revives nodes, and the result adds a per-phase
// breakdown (FleetMetrics.Phases) to the usual fleet metrics. Like
// SimulateFleet, the outcome is a pure function of the configuration.
func SimulateScenario(sc ScenarioConfig) (FleetMetrics, error) {
	return SimulateScenarioContext(context.Background(), sc)
}

// SimulateScenarioContext is SimulateScenario under a caller context.
func SimulateScenarioContext(ctx context.Context, sc ScenarioConfig) (FleetMetrics, error) {
	return fleet.SimulateScenario(ctx, sc.Fleet, sc.Scenario)
}

// SimulateScenarioSweep evaluates every scenario concurrently on a
// bounded worker pool (workers <= 0 selects GOMAXPROCS, 1 is exactly
// serial), returning metrics in configuration order; every worker count
// produces identical metrics.
func SimulateScenarioSweep(scs []ScenarioConfig, workers int) ([]FleetMetrics, error) {
	return SimulateScenarioSweepContext(context.Background(), scs, workers)
}

// SimulateScenarioSweepContext is SimulateScenarioSweep under a caller
// context.
func SimulateScenarioSweepContext(ctx context.Context, scs []ScenarioConfig, workers int) ([]FleetMetrics, error) {
	return engine.Map(ctx, scs,
		func(ctx context.Context, sc ScenarioConfig) (FleetMetrics, error) {
			return fleet.SimulateScenario(ctx, sc.Fleet, sc.Scenario)
		}, engine.Options{Workers: workers})
}

// TraceConfig configures the fleet flight recorder: the capture level,
// the number of rejected alternatives each dispatch decision records
// (and counterfactually probes), and the timeline sample window. Set it
// on FleetConfig.Trace and run through SimulateFleetTraced or
// SimulateScenarioTraced — the plain entry points ignore it, so the
// untraced hot path stays allocation-free.
type TraceConfig = fleet.TraceConfig

// TraceLevel selects how much the flight recorder captures.
type TraceLevel = trace.Level

// Trace capture levels.
const (
	// TraceOff disables the recorder (the zero value); the traced entry
	// points promote it to TraceDecisions, since calling them is the
	// opt-in.
	TraceOff = trace.LevelOff
	// TraceDecisions records every dispatch decision with its winning
	// routing key and top-k rejected alternatives (each counterfactually
	// probed against the alternative node's realized future), lifecycle
	// events, and rolling timeline samples.
	TraceDecisions = trace.LevelDecisions
	// TraceFull adds per-request service-start and completion events.
	TraceFull = trace.LevelFull
)

// ParseTraceLevel maps a level name (off, decisions, full) to its
// TraceLevel.
func ParseTraceLevel(s string) (TraceLevel, error) { return trace.ParseLevel(s) }

// FleetTrace is one traced run's complete recording: a header plus every
// decision, lifecycle event, and timeline sample in the exact global
// event order (byte-identical at any FleetConfig.Workers count). Use
// WriteJSONL to serialize it, and Decisions / Samples / Events /
// TopRegret to mine it in process.
type FleetTrace = trace.Trace

// SimulateFleetTraced runs SimulateFleet with the flight recorder
// attached, returning the metrics together with the recording. The
// metrics are identical to the untraced run's — the recorder observes,
// never steers.
func SimulateFleetTraced(cfg FleetConfig) (FleetMetrics, *FleetTrace, error) {
	return SimulateFleetTracedContext(context.Background(), cfg)
}

// SimulateFleetTracedContext is SimulateFleetTraced under a caller
// context.
func SimulateFleetTracedContext(ctx context.Context, cfg FleetConfig) (FleetMetrics, *FleetTrace, error) {
	return fleet.SimulateTraced(ctx, cfg)
}

// SimulateScenarioTraced runs SimulateScenario with the flight recorder
// attached: phase boundaries annotate the timeline and churn joins the
// event stream alongside the dispatch decisions.
func SimulateScenarioTraced(sc ScenarioConfig) (FleetMetrics, *FleetTrace, error) {
	return SimulateScenarioTracedContext(context.Background(), sc)
}

// SimulateScenarioTracedContext is SimulateScenarioTraced under a caller
// context.
func SimulateScenarioTracedContext(ctx context.Context, sc ScenarioConfig) (FleetMetrics, *FleetTrace, error) {
	return fleet.SimulateScenarioTraced(ctx, sc.Fleet, sc.Scenario)
}

// FleetWorkload declares a multi-tenant workload over the fleet: SLO
// classes (priority, latency target, token-bucket admission budget,
// per-class hedge-delay override), tenant populations (each with its own
// seeded Poisson/Gamma/Weibull arrival process and work/width
// distributions), and a dequeue discipline (fifo, priority, or sjf).
// The type unmarshals directly from JSON (the format cmd/fleetsim
// -workload loads); results land in FleetMetrics.Classes / .Tenants /
// .JainFairness.
type FleetWorkload = fleet.WorkloadSpec

// WorkloadSLOClass declares one service class of a FleetWorkload.
type WorkloadSLOClass = fleet.SLOClass

// WorkloadTenant declares one client population of a FleetWorkload.
type WorkloadTenant = fleet.TenantSpec

// WorkloadArrival is one tenant's arrival process (poisson, gamma, or
// weibull, mean-matched to its rate).
type WorkloadArrival = fleet.ArrivalSpec

// WorkloadWork is one tenant's per-request work distribution (exp,
// fixed, lognormal, or pareto, mean-matched to its mean).
type WorkloadWork = fleet.WorkSpec

// WorkloadWidth is one tenant's request-width distribution (fixed,
// uniform, or choice); a request's width caps its service parallelism.
type WorkloadWidth = fleet.WidthSpec

// ClassMetrics is one SLO class's slice of a workload outcome:
// offered/terminal counts, admission sheds, retries, goodput, latency
// percentiles, and SLO attainment.
type ClassMetrics = fleet.ClassMetrics

// TenantMetrics is one tenant population's slice of a workload outcome.
type TenantMetrics = fleet.TenantMetrics

// TraceRequest is one row of a replayable request trace: arrival
// instant, single-core work, and optional width/tenant/class labels.
type TraceRequest = fleet.TraceRequest

// SimulateWorkload runs the declared multi-tenant workload over a flat
// timeline of FleetWorkload.DurationS seconds; like every fleet entry
// point the result is byte-identical at any worker count.
func SimulateWorkload(cfg FleetConfig, w FleetWorkload) (FleetMetrics, error) {
	return SimulateWorkloadContext(context.Background(), cfg, w)
}

// SimulateWorkloadContext is SimulateWorkload under a caller context.
func SimulateWorkloadContext(ctx context.Context, cfg FleetConfig, w FleetWorkload) (FleetMetrics, error) {
	return fleet.SimulateWorkload(ctx, cfg, w)
}

// SimulateScenarioWorkload runs the workload's tenant populations
// through a scenario's timeline: phase factors modulate every tenant's
// arrival rate, while ambient shifts, churn, and heterogeneous classes
// apply as in SimulateScenario.
func SimulateScenarioWorkload(sc ScenarioConfig, w FleetWorkload) (FleetMetrics, error) {
	return SimulateScenarioWorkloadContext(context.Background(), sc, w)
}

// SimulateScenarioWorkloadContext is SimulateScenarioWorkload under a
// caller context.
func SimulateScenarioWorkloadContext(ctx context.Context, sc ScenarioConfig, w FleetWorkload) (FleetMetrics, error) {
	return fleet.SimulateScenarioWorkload(ctx, sc.Fleet, sc.Scenario, w)
}

// SimulateReplay replays a recorded request trace through the fleet. A
// non-nil spec declares the SLO classes trace labels resolve against
// (admission and disciplines then apply); without one, labeled traces
// get implicit accounting-only classes and a fully unlabeled trace
// reproduces the plain engine's Metrics exactly.
func SimulateReplay(cfg FleetConfig, rows []TraceRequest, spec *FleetWorkload) (FleetMetrics, error) {
	return SimulateReplayContext(context.Background(), cfg, rows, spec)
}

// SimulateReplayContext is SimulateReplay under a caller context.
func SimulateReplayContext(ctx context.Context, cfg FleetConfig, rows []TraceRequest, spec *FleetWorkload) (FleetMetrics, error) {
	return fleet.SimulateReplay(ctx, cfg, rows, spec)
}

// ParseRequestTrace reads a request trace in either supported encoding
// (JSON lines or CSV, sniffed from the first byte; strict decode in
// both). WriteRequestTraceCSV serializes rows so they parse back
// bit-identically, and ReplayFromRecording converts a flight-recorder
// FleetTrace into a replayable trace — replaying a recording of a plain
// run reproduces that run's arrivals exactly.
func ParseRequestTrace(r io.Reader) ([]TraceRequest, error) { return fleet.ParseRequestTrace(r) }

// WriteRequestTraceCSV serializes a request trace as strict CSV.
func WriteRequestTraceCSV(w io.Writer, rows []TraceRequest) error {
	return fleet.WriteRequestTraceCSV(w, rows)
}

// ReplayFromRecording converts a flight-recorder trace back into a
// replayable request trace (one row per recorded fresh-arrival dispatch
// decision, drops included).
func ReplayFromRecording(tr *FleetTrace) ([]TraceRequest, error) {
	return fleet.ReplayFromRecording(tr)
}

// ReadFleetTrace parses a flight-recorder recording serialized by
// FleetTrace.WriteJSONL; decoding is strict, so a recording round-trips
// exactly.
func ReadFleetTrace(r io.Reader) (*FleetTrace, error) { return trace.ReadJSONL(r) }

// TraceSparkline renders a series as a one-line unicode sparkline,
// min–max scaled; negative values (the trace's no-data sentinel, e.g. a
// window that completed nothing) render as gaps. fleetsim uses it for
// the per-window p99 row in -trace-summary.
func TraceSparkline(vals []float64) string { return trace.Sparkline(vals) }

// Table is a printable experiment result.
type Table = table.Table

// ExperimentIDs lists every regenerable paper artifact in paper order.
func ExperimentIDs() []string {
	var ids []string
	for _, d := range experiments.Registry() {
		ids = append(ids, d.ID)
	}
	return ids
}

// RunOptions tune one experiment regeneration.
type RunOptions struct {
	// Scale multiplies workload input sizes; <= 0 or 1 selects the
	// calibrated defaults, smaller values give quick approximate runs.
	Scale float64
	// Workers bounds the engine pool evaluating the experiment's sweep;
	// <= 0 selects GOMAXPROCS and 1 is exactly serial. Tables are
	// identical at every worker count.
	Workers int
	// CSV selects machine-readable output (one CSV block per table,
	// preceded by a `# title` comment line) instead of rendered tables.
	CSV bool
}

// RunExperiment regenerates one paper table/figure at the given input
// scale (1 = calibrated defaults) and writes the tables to w, evaluating
// the sweep on the default worker pool.
func RunExperiment(w io.Writer, id string, scale float64) error {
	return RunExperimentWith(w, id, RunOptions{Scale: scale})
}

// RunExperimentCSV is RunExperiment with machine-readable CSV output.
func RunExperimentCSV(w io.Writer, id string, scale float64) error {
	return RunExperimentWith(w, id, RunOptions{Scale: scale, CSV: true})
}

// RunExperimentWith regenerates one paper table/figure under the full set
// of run options.
func RunExperimentWith(w io.Writer, id string, opt RunOptions) error {
	return RunExperimentWithContext(context.Background(), w, id, opt)
}

// RunExperimentWithContext is RunExperimentWith under a caller context:
// cancellation stops the experiment's sweep from dispatching new points
// and surfaces the context error.
func RunExperimentWithContext(ctx context.Context, w io.Writer, id string, opt RunOptions) error {
	d, err := experiments.ByID(id)
	if err != nil {
		return err
	}
	tables, err := d.Run(ctx, experiments.Options{Scale: opt.Scale, Workers: opt.Workers})
	if err != nil {
		return fmt.Errorf("sprinting: experiment %s: %w", id, err)
	}
	fmt.Fprintf(w, "# %s\n\n", d.Title)
	for _, tb := range tables {
		if opt.CSV {
			fmt.Fprintf(w, "# %s\n%s\n", tb.Title, tb.CSV())
			continue
		}
		tb.Render(w)
		fmt.Fprintln(w)
	}
	return nil
}

// GridPoint is one simulation point of a batch run: a kernel at an input
// size under a full sprint-system configuration.
type GridPoint = engine.Point

// RunGrid evaluates a batch of simulation points concurrently on a bounded
// worker pool (workers <= 0 selects GOMAXPROCS, 1 is exactly serial) and
// returns the results in point order regardless of completion order.
// Evaluations are deterministic, so every worker count produces identical
// results; a panicking or failing point is isolated and reported in the
// joined error while the remaining points still complete.
func RunGrid(points []GridPoint, workers int) ([]Result, error) {
	return RunGridContext(context.Background(), points, workers)
}

// RunGridContext is RunGrid under a caller context: cancellation stops new
// points from starting while finished points keep their results.
func RunGridContext(ctx context.Context, points []GridPoint, workers int) ([]Result, error) {
	return engine.RunGrid(ctx, points, engine.Options{Workers: workers})
}
